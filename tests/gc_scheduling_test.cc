// GC scheduling (DESIGN.md §10): deterministic virtual-time GC (the default)
// runs rounds at reproducible points via the cooperative quantum and the
// explicit GcTick() API; the legacy kOsThread escape hatch backs off on a
// condition variable (no timed polling) and never starts before recovery is
// settled. The kOsThread tests double as the TSan coverage of the real
// GC thread (tools/ci.sh includes this binary in the sanitizer presets).
#include <chrono>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/ccl_btree.h"
#include "src/kvindex/runtime.h"

namespace cclbt::core {
namespace {

using kvindex::Runtime;
using kvindex::RuntimeOptions;

std::unique_ptr<Runtime> MakeRuntime(size_t pool_bytes = 128 << 20) {
  RuntimeOptions options;
  options.device.pool_bytes = pool_bytes;
  return std::make_unique<Runtime>(options);
}

// Aggressive trigger so small tests reach GC quickly.
TreeOptions GcOptions() {
  TreeOptions options;
  options.th_log_pct = 5;
  options.gc_quantum_ops = 16;
  return options;
}

void InsertMany(CclBTree& tree, uint64_t count, uint64_t seed) {
  for (uint64_t i = 0; i < count; i++) {
    tree.Upsert(Mix64(seed + i) | 1, i + 1);
  }
}

TEST(GcSchedulingTest, DeterministicQuantumRunsGcAtTrigger) {
  auto rt = MakeRuntime();
  TreeOptions options = GcOptions();  // background_gc on, kDeterministic
  CclBTree tree(*rt, options);
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  InsertMany(tree, 4000, /*seed=*/1);
  EXPECT_GT(tree.gc_rounds(), 0u) << "cooperative quantum never ran a round";
  // The round ran on the tree-owned GC context, fast-forwarded to the
  // virtual-time frontier — not at time zero, not on the worker's clock.
  EXPECT_GT(tree.gc_vtime_ns(), 0u);
}

TEST(GcSchedulingTest, DeterministicGcIsReproducible) {
  uint64_t rounds[2];
  uint64_t live_bytes[2];
  uint64_t gc_vtime[2];
  for (int run = 0; run < 2; run++) {
    auto rt = MakeRuntime();
    CclBTree tree(*rt, GcOptions());
    pmsim::ThreadContext ctx(rt->device(), 0, 0);
    InsertMany(tree, 4000, /*seed=*/1);
    rounds[run] = tree.gc_rounds();
    live_bytes[run] = tree.log_live_bytes();
    gc_vtime[run] = tree.gc_vtime_ns();
  }
  EXPECT_GT(rounds[0], 0u);
  EXPECT_EQ(rounds[0], rounds[1]);
  EXPECT_EQ(live_bytes[0], live_bytes[1]);
  EXPECT_EQ(gc_vtime[0], gc_vtime[1]);
}

TEST(GcSchedulingTest, ManualGcTickHonorsTriggerAndHysteresis) {
  auto rt = MakeRuntime();
  TreeOptions options = GcOptions();
  options.background_gc = false;  // rounds only via explicit ticks
  CclBTree tree(*rt, options);
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  InsertMany(tree, 2000, /*seed=*/2);
  EXPECT_EQ(tree.gc_rounds(), 0u);
  ASSERT_TRUE(tree.GcTriggerReached());
  EXPECT_TRUE(tree.GcTick());
  EXPECT_EQ(tree.gc_rounds(), 1u);
  // Immediately after a round the hysteresis floor holds the trigger down.
  EXPECT_FALSE(tree.GcTick());
  EXPECT_EQ(tree.gc_rounds(), 1u);
}

TEST(GcSchedulingTest, GcTickIsNoOpInGcModeNone) {
  auto rt = MakeRuntime();
  TreeOptions options = GcOptions();
  options.gc_mode = GcMode::kNone;
  CclBTree tree(*rt, options);
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  InsertMany(tree, 500, /*seed=*/3);
  EXPECT_FALSE(tree.GcTick());
  EXPECT_EQ(tree.gc_rounds(), 0u);
  EXPECT_EQ(tree.gc_vtime_ns(), 0u);
}

// Naive GC under deterministic scheduling is stop-the-world: after a round,
// every live worker clock has been raised to the barrier's end.
TEST(GcSchedulingTest, NaiveGcRaisesWorkerClocksToBarrierEnd) {
  auto rt = MakeRuntime();
  TreeOptions options = GcOptions();
  options.gc_mode = GcMode::kNaive;
  options.background_gc = false;
  CclBTree tree(*rt, options);
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  InsertMany(tree, 2000, /*seed=*/4);
  ASSERT_TRUE(tree.GcTick());
  EXPECT_GE(ctx.now_ns(), tree.gc_vtime_ns());
}

// Lifecycle audit: a kAttach instance whose Recover() fails (pool was never
// formatted) must destruct cleanly with background GC configured — no GC
// state may exist before recovered_ is settled. Run under ASan/TSan via the
// sanitizer presets.
TEST(GcSchedulingTest, FailedRecoveryDestructsCleanly) {
  for (GcScheduling scheduling : {GcScheduling::kDeterministic, GcScheduling::kOsThread}) {
    auto rt = MakeRuntime();
    TreeOptions options = GcOptions();
    options.gc_scheduling = scheduling;
    auto tree = std::make_unique<CclBTree>(*rt, options, kvindex::Lifecycle::kAttach);
    EXPECT_FALSE(tree->Recover(*rt, /*recovery_threads=*/2));
    tree.reset();  // must not join/stop anything that was never started
  }
}

TEST(GcSchedulingTest, RecoverOnCreateInstanceFails) {
  auto rt = MakeRuntime();
  CclBTree tree(*rt, GcOptions());
  EXPECT_FALSE(tree.Recover(*rt, 1));
}

// Legacy escape hatch: the GC thread parks on a condition variable and is
// woken by trigger producers — rounds still happen without any timed poll.
TEST(GcSchedulingTest, OsThreadModeRunsGcWhenSignalled) {
  auto rt = MakeRuntime();
  TreeOptions options = GcOptions();
  options.gc_scheduling = GcScheduling::kOsThread;
  CclBTree tree(*rt, options);
  pmsim::ThreadContext ctx(rt->device(), 0, 0);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  uint64_t seed = 5;
  while (tree.gc_rounds() == 0 && std::chrono::steady_clock::now() < deadline) {
    InsertMany(tree, 200, seed);
    seed += 200;
  }
  EXPECT_GT(tree.gc_rounds(), 0u) << "GC thread never woke on the trigger signal";
}

// Destruction with the GC thread parked (trigger never reached) must not
// hang: StopBackgroundGc signals the condition variable.
TEST(GcSchedulingTest, OsThreadModeStopsPromptlyWhenIdle) {
  auto rt = MakeRuntime();
  TreeOptions options;  // default trigger: never reached with zero ops
  options.gc_scheduling = GcScheduling::kOsThread;
  CclBTree tree(*rt, options);
}

}  // namespace
}  // namespace cclbt::core
