// Unit + property tests for the DRAM inner-index B+-tree (floor routing,
// splits across many levels, removal, ordered iteration, concurrency).
#include <algorithm>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/kvindex/dram_btree.h"

namespace cclbt::kvindex {
namespace {

TEST(DramBTree, EmptyRouteFloorNotFound) {
  DramBTree<int> tree;
  bool found = true;
  tree.RouteFloor(5, &found);
  EXPECT_FALSE(found);
}

TEST(DramBTree, SingleEntryFloor) {
  DramBTree<int> tree;
  tree.Insert(10, 1);
  bool found = false;
  EXPECT_EQ(tree.RouteFloor(10, &found), 1);
  EXPECT_TRUE(found);
  EXPECT_EQ(tree.RouteFloor(100, &found), 1);
  EXPECT_TRUE(found);
  tree.RouteFloor(9, &found);
  EXPECT_FALSE(found);
}

TEST(DramBTree, FloorSemanticsAcrossManyKeys) {
  DramBTree<uint64_t> tree;
  for (uint64_t k = 10; k <= 1000; k += 10) {
    tree.Insert(k, k);
  }
  bool found = false;
  EXPECT_EQ(tree.RouteFloor(10, &found), 10u);
  EXPECT_EQ(tree.RouteFloor(15, &found), 10u);
  EXPECT_EQ(tree.RouteFloor(999, &found), 990u);
  EXPECT_EQ(tree.RouteFloor(5000, &found), 1000u);
}

TEST(DramBTree, InsertOverwritesExisting) {
  DramBTree<int> tree;
  tree.Insert(5, 1);
  tree.Insert(5, 2);
  int value = 0;
  EXPECT_TRUE(tree.Get(5, &value));
  EXPECT_EQ(value, 2);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(DramBTree, RouteFloorEntryReportsSeparator) {
  DramBTree<uint64_t> tree;
  tree.Insert(10, 1);
  tree.Insert(20, 2);
  uint64_t sep = 0;
  uint64_t value = 0;
  ASSERT_TRUE(tree.RouteFloorEntry(15, &sep, &value));
  EXPECT_EQ(sep, 10u);
  EXPECT_EQ(value, 1u);
  ASSERT_TRUE(tree.RouteFloorEntry(20, &sep, &value));
  EXPECT_EQ(sep, 20u);
  EXPECT_FALSE(tree.RouteFloorEntry(5, &sep, &value));
}

TEST(DramBTree, RouteFloorEntryAfterBoundaryRemoval) {
  DramBTree<uint64_t> tree;
  for (uint64_t k = 1; k <= 500; k++) {
    tree.Insert(k * 2, k);
  }
  // Remove a leaf-minimum candidate range and re-check floor+separator.
  for (uint64_t k = 100; k <= 140; k++) {
    tree.Remove(k * 2);
  }
  uint64_t sep = 0;
  uint64_t value = 0;
  ASSERT_TRUE(tree.RouteFloorEntry(250, &sep, &value));
  EXPECT_EQ(sep, 198u);  // greatest surviving separator <= 250
  EXPECT_EQ(value, 99u);
}

TEST(DramBTree, NextEntryStepsInOrder) {
  DramBTree<uint64_t> tree;
  for (uint64_t k : {5u, 10u, 20u, 40u}) {
    tree.Insert(k, k);
  }
  uint64_t next_key = 0;
  uint64_t next_value = 0;
  EXPECT_TRUE(tree.NextEntry(5, &next_key, &next_value));
  EXPECT_EQ(next_key, 10u);
  EXPECT_TRUE(tree.NextEntry(11, &next_key, &next_value));
  EXPECT_EQ(next_key, 20u);
  EXPECT_FALSE(tree.NextEntry(40, &next_key, &next_value));
}

TEST(DramBTree, RemoveThenFloorFallsBack) {
  DramBTree<uint64_t> tree;
  for (uint64_t k = 1; k <= 300; k++) {
    tree.Insert(k * 10, k);
  }
  // Remove a whole run so a leaf's minimum disappears.
  for (uint64_t k = 100; k <= 160; k++) {
    EXPECT_TRUE(tree.Remove(k * 10));
  }
  bool found = false;
  EXPECT_EQ(tree.RouteFloor(1305, &found), 99u);  // floor is 990 -> payload 99
  EXPECT_TRUE(found);
}

TEST(DramBTree, RemoveMissingReturnsFalse) {
  DramBTree<int> tree;
  tree.Insert(1, 1);
  EXPECT_FALSE(tree.Remove(2));
  EXPECT_TRUE(tree.Remove(1));
  EXPECT_FALSE(tree.Remove(1));
}

TEST(DramBTree, ForEachFromVisitsCoveringRangeFirst) {
  DramBTree<uint64_t> tree;
  for (uint64_t k : {10u, 20u, 30u}) {
    tree.Insert(k, k);
  }
  std::vector<uint64_t> visited;
  tree.ForEachFrom(25, [&](uint64_t key, uint64_t) {
    visited.push_back(key);
    return true;
  });
  ASSERT_EQ(visited.size(), 2u);
  EXPECT_EQ(visited[0], 20u);  // covering separator included
  EXPECT_EQ(visited[1], 30u);
}

TEST(DramBTree, MatchesStdMapOnRandomOps) {
  DramBTree<uint64_t> tree;
  std::map<uint64_t, uint64_t> model;
  Rng rng(17);
  for (int i = 0; i < 50000; i++) {
    uint64_t key = rng.NextBounded(5000) + 1;
    switch (rng.NextBounded(3)) {
      case 0:
      case 1: {
        uint64_t value = rng.Next();
        tree.Insert(key, value);
        model[key] = value;
        break;
      }
      case 2: {
        EXPECT_EQ(tree.Remove(key), model.erase(key) > 0);
        break;
      }
    }
    if (i % 1000 == 0 && !model.empty()) {
      uint64_t probe = rng.NextBounded(6000);
      auto it = model.upper_bound(probe);
      bool found = false;
      uint64_t got = tree.RouteFloor(probe, &found);
      if (it == model.begin()) {
        EXPECT_FALSE(found);
      } else {
        ASSERT_TRUE(found);
        EXPECT_EQ(got, std::prev(it)->second);
      }
    }
  }
  EXPECT_EQ(tree.size(), model.size());
  // Full iteration matches the model.
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  tree.ForEachFrom(0, [&](uint64_t key, uint64_t value) {
    entries.emplace_back(key, value);
    return true;
  });
  ASSERT_EQ(entries.size(), model.size());
  auto model_it = model.begin();
  for (const auto& [key, value] : entries) {
    EXPECT_EQ(key, model_it->first);
    EXPECT_EQ(value, model_it->second);
    ++model_it;
  }
}

TEST(DramBTree, DeepSplitsKeepOrder) {
  DramBTree<uint64_t> tree;
  const uint64_t kN = 200000;
  for (uint64_t i = 0; i < kN; i++) {
    tree.Insert(Mix64(i) | 1, i);
  }
  EXPECT_EQ(tree.size(), kN);
  EXPECT_GE(tree.height(), 3);
  uint64_t prev = 0;
  size_t count = 0;
  tree.ForEachFrom(0, [&](uint64_t key, uint64_t) {
    EXPECT_GT(key, prev);
    prev = key;
    count++;
    return true;
  });
  EXPECT_EQ(count, kN);
}

TEST(DramBTree, ConcurrentReadersDuringInserts) {
  DramBTree<uint64_t> tree;
  for (uint64_t k = 1; k <= 1000; k++) {
    tree.Insert(k * 100, k);
  }
  std::atomic<bool> stop{false};
  std::thread writer([&tree, &stop] {
    for (uint64_t k = 1; k <= 20000 && !stop.load(); k++) {
      tree.Insert(k * 100 + 50, k);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  std::atomic<int> errors{0};
  for (int t = 0; t < 3; t++) {
    readers.emplace_back([&tree, &stop, &errors, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      while (!stop.load()) {
        uint64_t probe = rng.NextBounded(100000) + 100;
        bool found = false;
        tree.RouteFloor(probe, &found);
        if (!found) {
          errors++;
        }
      }
    });
  }
  writer.join();
  for (auto& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace cclbt::kvindex
