// Unit + property tests for the DRAM inner-index B+-tree (floor routing,
// splits across many levels, removal, ordered iteration, concurrency).
#include <algorithm>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/kvindex/dram_btree.h"

namespace cclbt::kvindex {
namespace {

TEST(DramBTree, EmptyRouteFloorNotFound) {
  DramBTree<int> tree;
  bool found = true;
  tree.RouteFloor(5, &found);
  EXPECT_FALSE(found);
}

TEST(DramBTree, SingleEntryFloor) {
  DramBTree<int> tree;
  tree.Insert(10, 1);
  bool found = false;
  EXPECT_EQ(tree.RouteFloor(10, &found), 1);
  EXPECT_TRUE(found);
  EXPECT_EQ(tree.RouteFloor(100, &found), 1);
  EXPECT_TRUE(found);
  tree.RouteFloor(9, &found);
  EXPECT_FALSE(found);
}

TEST(DramBTree, FloorSemanticsAcrossManyKeys) {
  DramBTree<uint64_t> tree;
  for (uint64_t k = 10; k <= 1000; k += 10) {
    tree.Insert(k, k);
  }
  bool found = false;
  EXPECT_EQ(tree.RouteFloor(10, &found), 10u);
  EXPECT_EQ(tree.RouteFloor(15, &found), 10u);
  EXPECT_EQ(tree.RouteFloor(999, &found), 990u);
  EXPECT_EQ(tree.RouteFloor(5000, &found), 1000u);
}

TEST(DramBTree, InsertOverwritesExisting) {
  DramBTree<int> tree;
  tree.Insert(5, 1);
  tree.Insert(5, 2);
  int value = 0;
  EXPECT_TRUE(tree.Get(5, &value));
  EXPECT_EQ(value, 2);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(DramBTree, RouteFloorEntryReportsSeparator) {
  DramBTree<uint64_t> tree;
  tree.Insert(10, 1);
  tree.Insert(20, 2);
  uint64_t sep = 0;
  uint64_t value = 0;
  ASSERT_TRUE(tree.RouteFloorEntry(15, &sep, &value));
  EXPECT_EQ(sep, 10u);
  EXPECT_EQ(value, 1u);
  ASSERT_TRUE(tree.RouteFloorEntry(20, &sep, &value));
  EXPECT_EQ(sep, 20u);
  EXPECT_FALSE(tree.RouteFloorEntry(5, &sep, &value));
}

TEST(DramBTree, RouteFloorEntryAfterBoundaryRemoval) {
  DramBTree<uint64_t> tree;
  for (uint64_t k = 1; k <= 500; k++) {
    tree.Insert(k * 2, k);
  }
  // Remove a leaf-minimum candidate range and re-check floor+separator.
  for (uint64_t k = 100; k <= 140; k++) {
    tree.Remove(k * 2);
  }
  uint64_t sep = 0;
  uint64_t value = 0;
  ASSERT_TRUE(tree.RouteFloorEntry(250, &sep, &value));
  EXPECT_EQ(sep, 198u);  // greatest surviving separator <= 250
  EXPECT_EQ(value, 99u);
}

TEST(DramBTree, NextEntryStepsInOrder) {
  DramBTree<uint64_t> tree;
  for (uint64_t k : {5u, 10u, 20u, 40u}) {
    tree.Insert(k, k);
  }
  uint64_t next_key = 0;
  uint64_t next_value = 0;
  EXPECT_TRUE(tree.NextEntry(5, &next_key, &next_value));
  EXPECT_EQ(next_key, 10u);
  EXPECT_TRUE(tree.NextEntry(11, &next_key, &next_value));
  EXPECT_EQ(next_key, 20u);
  EXPECT_FALSE(tree.NextEntry(40, &next_key, &next_value));
}

TEST(DramBTree, RemoveThenFloorFallsBack) {
  DramBTree<uint64_t> tree;
  for (uint64_t k = 1; k <= 300; k++) {
    tree.Insert(k * 10, k);
  }
  // Remove a whole run so a leaf's minimum disappears.
  for (uint64_t k = 100; k <= 160; k++) {
    EXPECT_TRUE(tree.Remove(k * 10));
  }
  bool found = false;
  EXPECT_EQ(tree.RouteFloor(1305, &found), 99u);  // floor is 990 -> payload 99
  EXPECT_TRUE(found);
}

TEST(DramBTree, RemoveMissingReturnsFalse) {
  DramBTree<int> tree;
  tree.Insert(1, 1);
  EXPECT_FALSE(tree.Remove(2));
  EXPECT_TRUE(tree.Remove(1));
  EXPECT_FALSE(tree.Remove(1));
}

TEST(DramBTree, ForEachFromVisitsCoveringRangeFirst) {
  DramBTree<uint64_t> tree;
  for (uint64_t k : {10u, 20u, 30u}) {
    tree.Insert(k, k);
  }
  std::vector<uint64_t> visited;
  tree.ForEachFrom(25, [&](uint64_t key, uint64_t) {
    visited.push_back(key);
    return true;
  });
  ASSERT_EQ(visited.size(), 2u);
  EXPECT_EQ(visited[0], 20u);  // covering separator included
  EXPECT_EQ(visited[1], 30u);
}

TEST(DramBTree, MatchesStdMapOnRandomOps) {
  DramBTree<uint64_t> tree;
  std::map<uint64_t, uint64_t> model;
  Rng rng(17);
  for (int i = 0; i < 50000; i++) {
    uint64_t key = rng.NextBounded(5000) + 1;
    switch (rng.NextBounded(3)) {
      case 0:
      case 1: {
        uint64_t value = rng.Next();
        tree.Insert(key, value);
        model[key] = value;
        break;
      }
      case 2: {
        EXPECT_EQ(tree.Remove(key), model.erase(key) > 0);
        break;
      }
    }
    if (i % 1000 == 0 && !model.empty()) {
      uint64_t probe = rng.NextBounded(6000);
      auto it = model.upper_bound(probe);
      bool found = false;
      uint64_t got = tree.RouteFloor(probe, &found);
      if (it == model.begin()) {
        EXPECT_FALSE(found);
      } else {
        ASSERT_TRUE(found);
        EXPECT_EQ(got, std::prev(it)->second);
      }
    }
  }
  EXPECT_EQ(tree.size(), model.size());
  // Full iteration matches the model.
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  tree.ForEachFrom(0, [&](uint64_t key, uint64_t value) {
    entries.emplace_back(key, value);
    return true;
  });
  ASSERT_EQ(entries.size(), model.size());
  auto model_it = model.begin();
  for (const auto& [key, value] : entries) {
    EXPECT_EQ(key, model_it->first);
    EXPECT_EQ(value, model_it->second);
    ++model_it;
  }
}

TEST(DramBTree, DeepSplitsKeepOrder) {
  DramBTree<uint64_t> tree;
  const uint64_t kN = 200000;
  for (uint64_t i = 0; i < kN; i++) {
    tree.Insert(Mix64(i) | 1, i);
  }
  EXPECT_EQ(tree.size(), kN);
  EXPECT_GE(tree.height(), 3);
  uint64_t prev = 0;
  size_t count = 0;
  tree.ForEachFrom(0, [&](uint64_t key, uint64_t) {
    EXPECT_GT(key, prev);
    prev = key;
    count++;
    return true;
  });
  EXPECT_EQ(count, kN);
}

TEST(DramBTree, ConcurrentReadersDuringInserts) {
  DramBTree<uint64_t> tree;
  for (uint64_t k = 1; k <= 1000; k++) {
    tree.Insert(k * 100, k);
  }
  std::atomic<bool> stop{false};
  std::thread writer([&tree, &stop] {
    for (uint64_t k = 1; k <= 20000 && !stop.load(); k++) {
      tree.Insert(k * 100 + 50, k);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  std::atomic<int> errors{0};
  for (int t = 0; t < 3; t++) {
    readers.emplace_back([&tree, &stop, &errors, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      while (!stop.load()) {
        uint64_t probe = rng.NextBounded(100000) + 100;
        bool found = false;
        tree.RouteFloor(probe, &found);
        if (!found) {
          errors++;
        }
      }
    });
  }
  writer.join();
  for (auto& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(errors.load(), 0);
}

// Locked and optimistic read paths must answer identically on a quiescent
// tree (the bench A/B harness relies on set_locked_reads being semantically
// neutral).
TEST(DramBTree, LockedReadsMatchOptimistic) {
  DramBTree<uint64_t> tree;
  Rng rng(42);
  std::map<uint64_t, uint64_t> model;
  for (int i = 0; i < 20000; i++) {
    uint64_t key = rng.NextBounded(30000) + 1;
    tree.Insert(key, key * 3);
    model[key] = key * 3;
  }
  for (int i = 0; i < 5000; i++) {
    uint64_t probe = rng.NextBounded(35000);
    bool found_opt = false;
    bool found_locked = false;
    tree.set_locked_reads(false);
    uint64_t got_opt = tree.RouteFloor(probe, &found_opt);
    uint64_t sep_opt = 0;
    uint64_t val_opt = 0;
    bool has_opt = tree.RouteFloorEntry(probe, &sep_opt, &val_opt);
    tree.set_locked_reads(true);
    uint64_t got_locked = tree.RouteFloor(probe, &found_locked);
    uint64_t sep_locked = 0;
    uint64_t val_locked = 0;
    bool has_locked = tree.RouteFloorEntry(probe, &sep_locked, &val_locked);
    tree.set_locked_reads(false);
    ASSERT_EQ(found_opt, found_locked);
    if (found_opt) {
      EXPECT_EQ(got_opt, got_locked);
    }
    ASSERT_EQ(has_opt, has_locked);
    if (has_opt) {
      EXPECT_EQ(sep_opt, sep_locked);
      EXPECT_EQ(val_opt, val_locked);
      auto it = model.upper_bound(probe);
      ASSERT_NE(it, model.begin());
      EXPECT_EQ(sep_opt, std::prev(it)->first);
      EXPECT_EQ(val_opt, std::prev(it)->second);
    }
  }
}

// Stress for the optimistic (version-validated) descent: concurrent
// inserts/removes racing readers that check internal consistency of every
// answer. Values are derived from keys so a torn read that slipped past
// validation would surface as a sep/value mismatch. Run under TSan via
// tools/sanitize.sh (dram_btree is in ci.sh's SANITIZE_FILTER).
TEST(DramBTree, OptimisticDescentStress) {
  DramBTree<uint64_t> tree;
  constexpr uint64_t kSpace = 8192;
  // Persistent floor sentinel so RouteFloor always finds something.
  tree.Insert(1, 1);
  for (uint64_t k = 2; k <= kSpace; k += 2) {
    tree.Insert(k, k);
  }
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; t++) {
    writers.emplace_back([&tree, t] {
      Rng rng(static_cast<uint64_t>(t) + 7);
      for (int i = 0; i < 40000; i++) {
        uint64_t key = rng.NextBounded(kSpace - 1) + 2;  // never touch sentinel 1
        if (rng.NextBounded(3) == 0) {
          tree.Remove(key);
        } else {
          tree.Insert(key, key);
        }
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; t++) {
    readers.emplace_back([&tree, &stop, &errors, t] {
      Rng rng(static_cast<uint64_t>(t) + 99);
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t probe = rng.NextBounded(kSpace + 64) + 1;
        uint64_t sep = 0;
        uint64_t value = 0;
        if (!tree.RouteFloorEntry(probe, &sep, &value)) {
          errors++;  // sentinel 1 guarantees a floor exists
          continue;
        }
        // Internal consistency: separator is a floor and value tracks key.
        if (sep > probe || value != sep) {
          errors++;
        }
        uint64_t got = 0;
        if (tree.Get(probe, &got) && got != probe) {
          errors++;
        }
        uint64_t next_key = 0;
        uint64_t next_value = 0;
        if (tree.NextEntry(probe, &next_key, &next_value) &&
            (next_key <= probe || next_value != next_key)) {
          errors++;
        }
      }
    });
  }
  for (auto& writer : writers) {
    writer.join();
  }
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(errors.load(), 0);
  // Post-race structural sanity: full in-order walk, every value == key.
  uint64_t prev = 0;
  tree.ForEachFrom(0, [&](uint64_t key, uint64_t value) {
    EXPECT_GT(key, prev);
    EXPECT_EQ(value, key);
    prev = key;
    return true;
  });
}

}  // namespace
}  // namespace cclbt::kvindex
