// Unit tests for the workload & measurement toolkit (src/common).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/fingerprint.h"
#include "src/common/keyspace.h"
#include "src/common/ordo.h"
#include "src/common/rng.h"
#include "src/common/ycsb.h"
#include "src/common/zipfian.h"

namespace cclbt {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) {
    if (a.Next() == b.Next()) {
      same++;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; i++) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, Mix64IsBijectiveOnSample) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; i++) {
    outputs.insert(Mix64(i));
  }
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Zipfian, RankZeroIsHottest) {
  ZipfianGenerator zipf(1000000, 0.9, 3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) {
    counts[zipf.NextRank()]++;
  }
  // Rank 0 must be sampled far more than a uniform share.
  EXPECT_GT(counts[0], 100000 / 1000);
}

TEST(Zipfian, SkewIncreasesHeadMass) {
  auto head_mass = [](double theta) {
    ZipfianGenerator zipf(100000, theta, 5);
    int head = 0;
    for (int i = 0; i < 50000; i++) {
      if (zipf.NextRank() < 100) {
        head++;
      }
    }
    return head;
  };
  EXPECT_LT(head_mass(0.5), head_mass(0.99));
}

TEST(Zipfian, RanksWithinRange) {
  ZipfianGenerator zipf(5000, 0.99, 11);
  for (int i = 0; i < 100000; i++) {
    EXPECT_LT(zipf.NextRank(), 5000u);
  }
}

TEST(Zipfian, ScrambledSpreadsHotKeys) {
  ZipfianGenerator zipf(1 << 20, 0.9, 13);
  // The two hottest scrambled keys should not be adjacent.
  uint64_t k0 = zipf.Scramble(0);
  uint64_t k1 = zipf.Scramble(1);
  EXPECT_GT(std::max(k0, k1) - std::min(k0, k1), 1u);
}

// Histogram tests live in tests/metrics_test.cc: the one log-bucketed
// histogram implementation moved to src/metrics/histogram.h.

TEST(Ordo, MonotonicWithinSocket) {
  OrdoClock clock(100);
  uint64_t prev = 0;
  for (int i = 0; i < 1000; i++) {
    uint64_t now = clock.Now(0);
    EXPECT_GT(now, prev);
    prev = now;
  }
}

TEST(Ordo, CompareRespectsBoundary) {
  OrdoClock clock(1000);
  EXPECT_EQ(clock.Compare(5000, 1000), 1);
  EXPECT_EQ(clock.Compare(1000, 5000), -1);
  EXPECT_EQ(clock.Compare(1000, 1500), 0);  // within uncertainty
}

TEST(Ordo, NowAfterBoundaryOrdersGlobally) {
  OrdoClock clock(1000);
  uint64_t t1 = clock.Now(1);
  uint64_t t2 = clock.NowAfterBoundary(0);
  EXPECT_EQ(clock.Compare(t2, t1), 1);
}

TEST(Fingerprint, DeterministicAndSpread) {
  std::set<uint8_t> seen;
  for (uint64_t k = 1; k <= 1000; k++) {
    EXPECT_EQ(Fingerprint8(k), Fingerprint8(k));
    seen.insert(Fingerprint8(k));
  }
  // Sequential keys should cover most of the byte range.
  EXPECT_GT(seen.size(), 200u);
}

TEST(KeyStream, UniformHasNoCollisionsInSpace) {
  KeyStream stream(KeyDistribution::kUniform, 100000);
  std::set<uint64_t> keys;
  for (uint64_t i = 0; i < 100000; i++) {
    keys.insert(stream.Key(i));
  }
  EXPECT_EQ(keys.size(), 100000u);
}

TEST(KeyStream, SequentialIsMonotone) {
  KeyStream stream(KeyDistribution::kSequential, 1000);
  for (uint64_t i = 1; i < 1000; i++) {
    EXPECT_GT(stream.Key(i), stream.Key(i - 1));
  }
}

TEST(KeyStream, ZipfianRepeatsHotKeys) {
  KeyStream stream(KeyDistribution::kZipfian, 1 << 20, 0.99);
  std::map<uint64_t, int> counts;
  for (uint64_t i = 0; i < 100000; i++) {
    counts[stream.Key(i)]++;
  }
  int max_count = 0;
  for (const auto& [key, count] : counts) {
    max_count = std::max(max_count, count);
  }
  EXPECT_GT(max_count, 100);  // hot key dominates
}

class SosdDatasetTest : public ::testing::TestWithParam<SosdDataset> {};

TEST_P(SosdDatasetTest, ExactSizeUniqueNonZero) {
  auto keys = BuildSosdLikeDataset(GetParam(), 50000);
  EXPECT_EQ(keys.size(), 50000u);
  std::set<uint64_t> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), keys.size());
  EXPECT_EQ(unique.count(0), 0u);
}

TEST_P(SosdDatasetTest, Deterministic) {
  auto a = BuildSosdLikeDataset(GetParam(), 10000, 9);
  auto b = BuildSosdLikeDataset(GetParam(), 10000, 9);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, SosdDatasetTest,
                         ::testing::Values(SosdDataset::kAmzn, SosdDataset::kOsm,
                                           SosdDataset::kWiki, SosdDataset::kFacebook),
                         [](const auto& name_info) { return SosdDatasetName(name_info.param); });

TEST(Ycsb, MixFractionsRoughlyRespected) {
  YcsbOpPicker picker(kYcsbInsertIntensive, 17);
  int inserts = 0;
  int reads = 0;
  for (int i = 0; i < 100000; i++) {
    OpType op = picker.Next();
    inserts += op == OpType::kInsert;
    reads += op == OpType::kRead;
  }
  EXPECT_NEAR(inserts / 100000.0, 0.75, 0.02);
  EXPECT_NEAR(reads / 100000.0, 0.25, 0.02);
}

TEST(Ycsb, ScanInsertMix) {
  YcsbOpPicker picker(kYcsbScanInsert, 23);
  int scans = 0;
  for (int i = 0; i < 100000; i++) {
    scans += picker.Next() == OpType::kScan;
  }
  EXPECT_NEAR(scans / 100000.0, 0.95, 0.02);
}

}  // namespace
}  // namespace cclbt
