// Shared crash+recover boilerplate for tests, built on the persistence
// lifecycle API (DESIGN.md §9): PmDevice::Crash/CrashTorn ->
// Runtime::Reopen (superblock validation) -> attach + Recover.
//
// Callers must NOT hold a live worker ThreadContext across these helpers
// beyond the crash: recovery opens its own boot context.
#ifndef TESTS_CRASH_UTIL_H_
#define TESTS_CRASH_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/ccl_btree.h"
#include "src/core/ccl_hash.h"
#include "src/kvindex/runtime.h"

namespace cclbt::testutil {

// Power-fails the device (optionally tearing the pending fence group with
// `torn_seed`) and re-attaches the runtime to the surviving media. Any
// superblock validation failure is a test failure.
inline void CrashRestart(kvindex::Runtime& rt, bool torn = false, uint64_t torn_seed = 0) {
  if (torn) {
    rt.device().CrashTorn(torn_seed);
  } else {
    rt.device().Crash();
  }
  std::string error;
  ASSERT_TRUE(rt.Reopen(&error)) << error;
}

// Crash + reopen + CCL-BTree attach/recover in one step. Returns the
// recovered tree (never nullptr on success; failures are EXPECT-ed so the
// calling test fails with context).
inline std::unique_ptr<core::CclBTree> CrashAndRecoverTree(kvindex::Runtime& rt,
                                                           const core::TreeOptions& options,
                                                           int recovery_threads = 1,
                                                           bool torn = false,
                                                           uint64_t torn_seed = 0) {
  if (torn) {
    rt.device().CrashTorn(torn_seed);
  } else {
    rt.device().Crash();
  }
  std::string error;
  EXPECT_TRUE(rt.Reopen(&error)) << error;
  auto tree = std::make_unique<core::CclBTree>(rt, options, kvindex::Lifecycle::kAttach);
  EXPECT_TRUE(tree->Recover(rt, recovery_threads));
  return tree;
}

// Crash + reopen + CCL-Hash recover (the hash table keeps its static
// Recover: it is not a kvindex::KvIndex).
inline std::unique_ptr<core::CclHashTable> CrashAndRecoverHash(
    kvindex::Runtime& rt, const core::CclHashTable::Options& options, bool torn = false,
    uint64_t torn_seed = 0) {
  if (torn) {
    rt.device().CrashTorn(torn_seed);
  } else {
    rt.device().Crash();
  }
  std::string error;
  EXPECT_TRUE(rt.Reopen(&error)) << error;
  return core::CclHashTable::Recover(rt, options);
}

}  // namespace cclbt::testutil

#endif  // TESTS_CRASH_UTIL_H_
