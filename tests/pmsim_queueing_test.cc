// Property tests for the virtual-time performance model itself: bandwidth
// saturation, queueing fairness, NUMA service penalties and the Figure-2
// linearity that the whole reproduction argument rests on.
#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/pmsim/device.h"

namespace cclbt::pmsim {
namespace {

DeviceConfig OneDimmConfig() {
  DeviceConfig config;
  config.pool_bytes = 256 << 20;
  config.num_sockets = 1;
  config.dimms_per_socket = 1;
  return config;
}

// Runs `workers` interleaved logical writers doing `per_worker` random
// single-line flushes each; returns modeled elapsed ns.
uint64_t RunRandomWriters(PmDevice& device, int workers, uint64_t per_worker) {
  std::vector<std::unique_ptr<ThreadContext>> ctxs;
  std::vector<Rng> rngs;
  for (int w = 0; w < workers; w++) {
    ctxs.push_back(std::make_unique<ThreadContext>(device, 0, w));
    rngs.emplace_back(static_cast<uint64_t>(w) + 5);
  }
  ThreadContext::SetCurrent(nullptr);
  uint64_t xplines = device.size() / kXplineBytes - 64;
  for (uint64_t i = 0; i < per_worker; i++) {
    for (int w = 0; w < workers; w++) {
      ThreadContext& ctx = *ctxs[static_cast<size_t>(w)];
      ThreadContext::SetCurrent(&ctx);
      uint64_t offset = (rngs[static_cast<size_t>(w)].NextBounded(xplines) + 16) * kXplineBytes;
      device.FlushLine(ctx, device.base() + offset);
      device.Fence(ctx);
    }
  }
  ThreadContext::SetCurrent(nullptr);
  uint64_t elapsed = device.MaxDimmBusyNs();
  for (auto& ctx : ctxs) {
    elapsed = std::max(elapsed, ctx->now_ns());
  }
  return elapsed;
}

TEST(QueueingModel, RandomWritesSaturateAtMediaBandwidth) {
  // With many writers, elapsed time must approach total media service time
  // (each random flush = one eviction = write + RMW service).
  PmDevice device(OneDimmConfig());
  const int kWorkers = 16;
  const uint64_t kPerWorker = 2000;
  uint64_t elapsed = RunRandomWriters(device, kWorkers, kPerWorker);
  const auto& cost = device.config().cost;
  uint64_t total_service =
      kWorkers * kPerWorker * (cost.xpline_write_service_ns + cost.xpline_rmw_extra_ns);
  EXPECT_GT(elapsed, total_service * 80 / 100);
  EXPECT_LT(elapsed, total_service * 130 / 100);
}

TEST(QueueingModel, MoreDimmsMeanMoreBandwidth) {
  DeviceConfig one = OneDimmConfig();
  DeviceConfig four = OneDimmConfig();
  four.dimms_per_socket = 4;
  PmDevice device_one(one);
  PmDevice device_four(four);
  uint64_t t1 = RunRandomWriters(device_one, 16, 1000);
  uint64_t t4 = RunRandomWriters(device_four, 16, 1000);
  // 4 DIMMs should be markedly faster (not necessarily 4x: interleave
  // imbalance and queueing remainders).
  EXPECT_LT(t4 * 2, t1);
}

TEST(QueueingModel, SingleWriterIsLatencyBoundNotBandwidthBound) {
  PmDevice device(OneDimmConfig());
  uint64_t elapsed = RunRandomWriters(device, 1, 2000);
  const auto& cost = device.config().cost;
  uint64_t cpu_only = 2000 * (cost.cacheline_flush_ns + cost.fence_ns);
  // A single writer's own clock stays CPU-bound (the WPQ absorbs its rate),
  // but the elapsed metric still covers the enqueued media service
  // (write + RMW per random eviction) with a small slack.
  uint64_t media = 2000 * (cost.xpline_write_service_ns + cost.xpline_rmw_extra_ns);
  EXPECT_LT(elapsed, std::max(cpu_only, media) + cost.wpq_slack_ns + media / 10);
  EXPECT_GE(elapsed, cpu_only);
}

TEST(QueueingModel, ReadsQueueBehindWrites) {
  // A read issued while the DIMM has a large write backlog must observe
  // queueing delay, not just base latency.
  PmDevice device(OneDimmConfig());
  ThreadContext ctx(device, 0, 0);
  Rng rng(9);
  for (int i = 0; i < 200; i++) {
    uint64_t offset = (rng.NextBounded(1 << 16) + 16) * kXplineBytes;
    device.FlushLine(ctx, device.base() + offset);
  }
  device.Fence(ctx);  // enqueue ~200 evictions of media work
  uint64_t before = ctx.now_ns();
  device.ReadPm(ctx, device.base() + (1ULL << 24), 64);
  uint64_t read_cost = ctx.now_ns() - before;
  EXPECT_GT(read_cost, device.config().cost.pm_read_ns);
}

TEST(QueueingModel, RemoteWritesCostMoreServiceTime) {
  DeviceConfig config;
  config.pool_bytes = 256 << 20;
  config.num_sockets = 2;
  config.dimms_per_socket = 1;
  auto run = [&](int socket) {
    PmDevice device(config);
    ThreadContext ctx(device, socket, 0);
    Rng rng(11);
    // All flushes to socket 0 addresses.
    for (int i = 0; i < 3000; i++) {
      uint64_t offset = (rng.NextBounded(1 << 16) + 16) * kXplineBytes;
      device.FlushLine(ctx, device.base() + offset);
      device.Fence(ctx);
    }
    return std::max(device.MaxDimmBusyNs(), ctx.now_ns());
  };
  uint64_t local = run(0);
  uint64_t remote = run(1);
  EXPECT_GT(remote, local * 3 / 2);  // remote_penalty_pct = 220
}

TEST(QueueingModel, ElapsedLinearInXplineCount) {
  // The Figure-2(b) property as an assertion: elapsed time grows ~linearly
  // with distinct XPLines per write under saturation.
  auto run = [](int xplines_per_write) {
    PmDevice device(OneDimmConfig());
    std::vector<std::unique_ptr<ThreadContext>> ctxs;
    std::vector<Rng> rngs;
    const int kWorkers = 12;
    for (int w = 0; w < kWorkers; w++) {
      ctxs.push_back(std::make_unique<ThreadContext>(device, 0, w));
      rngs.emplace_back(static_cast<uint64_t>(w) + 21);
    }
    ThreadContext::SetCurrent(nullptr);
    for (int i = 0; i < 1500; i++) {
      for (int w = 0; w < kWorkers; w++) {
        ThreadContext& ctx = *ctxs[static_cast<size_t>(w)];
        ThreadContext::SetCurrent(&ctx);
        for (int x = 0; x < xplines_per_write; x++) {
          uint64_t offset =
              (rngs[static_cast<size_t>(w)].NextBounded(1 << 18) + 16) * kXplineBytes;
          device.FlushLine(ctx, device.base() + offset);
        }
        device.Fence(ctx);
      }
    }
    ThreadContext::SetCurrent(nullptr);
    uint64_t elapsed = device.MaxDimmBusyNs();
    for (auto& ctx : ctxs) {
      elapsed = std::max(elapsed, ctx->now_ns());
    }
    return elapsed;
  };
  uint64_t t1 = run(1);
  uint64_t t2 = run(2);
  uint64_t t4 = run(4);
  EXPECT_NEAR(static_cast<double>(t2) / static_cast<double>(t1), 2.0, 0.35);
  EXPECT_NEAR(static_cast<double>(t4) / static_cast<double>(t1), 4.0, 0.7);
}

TEST(QueueingModel, InterleaveSpreadsLoadAcrossDimms) {
  DeviceConfig config = OneDimmConfig();
  config.dimms_per_socket = 4;
  PmDevice device(config);
  ThreadContext ctx(device, 0, 0);
  // Sequential 4 KB-stride writes must rotate across all four DIMMs.
  std::vector<int> seen(4, 0);
  for (int i = 0; i < 64; i++) {
    seen[static_cast<size_t>(device.DimmOf(static_cast<uintptr_t>(i) * 4096))]++;
  }
  for (int dimm = 0; dimm < 4; dimm++) {
    EXPECT_EQ(seen[static_cast<size_t>(dimm)], 16);
  }
}

}  // namespace
}  // namespace cclbt::pmsim
