// Unit tests for the persistent leaf-node layout: meta-word packing, slot
// search with fingerprints, free-slot/min-key helpers, fence-entry
// semantics.
#include <cstring>

#include <gtest/gtest.h>

#include "src/core/leaf_node.h"

namespace cclbt::core {
namespace {

TEST(LeafMeta, PackAndUnpackRoundTrip) {
  for (uint64_t bitmap : {0ULL, 1ULL, 0x3FFFULL, 0x2AAAULL}) {
    for (uint64_t next : {0ULL, 256ULL, 1ULL << 20, (1ULL << 40) - 256}) {
      uint64_t meta = MakeMeta(bitmap, next);
      EXPECT_EQ(MetaBitmap(meta), bitmap);
      EXPECT_EQ(MetaNextOffset(meta), next);
    }
  }
}

TEST(LeafMeta, BitmapAndNextAreIndependent) {
  uint64_t meta = MakeMeta(0x1234, 4096);
  EXPECT_EQ(MetaBitmap(MakeMeta(MetaBitmap(meta), 0)), 0x1234u & kBitmapMask);
  EXPECT_EQ(MetaNextOffset(MakeMeta(0, MetaNextOffset(meta))), 4096u);
}

struct LeafFixture : public ::testing::Test {
  void SetUp() override {
    std::memset(static_cast<void*>(&leaf), 0, sizeof(leaf));
  }

  void Fill(int slot, uint64_t key, uint64_t value) {
    leaf.kvs[slot] = {key, value};
    leaf.fingerprints[slot] = Fingerprint8(key);
    uint64_t meta = leaf.meta.load();
    leaf.meta.store(MakeMeta(MetaBitmap(meta) | (1ULL << slot), MetaNextOffset(meta)));
  }

  PmLeaf leaf;
};

TEST_F(LeafFixture, FindSlotLocatesKeys) {
  Fill(3, 100, 1);
  Fill(7, 200, 2);
  EXPECT_EQ(leaf.FindSlot(100), 3);
  EXPECT_EQ(leaf.FindSlot(200), 7);
  EXPECT_EQ(leaf.FindSlot(300), -1);
}

TEST_F(LeafFixture, FindSlotIgnoresInvalidSlots) {
  leaf.kvs[5] = {42, 1};
  leaf.fingerprints[5] = Fingerprint8(42);
  // Bit 5 not set: the slot content must be invisible.
  EXPECT_EQ(leaf.FindSlot(42), -1);
}

TEST_F(LeafFixture, FingerprintCollisionStillChecksKey) {
  // Find two keys with colliding fingerprints.
  uint64_t a = 1;
  uint64_t b = 2;
  while (Fingerprint8(a) != Fingerprint8(b)) {
    b++;
  }
  Fill(0, a, 10);
  EXPECT_EQ(leaf.FindSlot(b), -1);  // same fingerprint, different key
  EXPECT_EQ(leaf.FindSlot(a), 0);
}

TEST_F(LeafFixture, FreeSlotFindsFirstGap) {
  EXPECT_EQ(leaf.FreeSlot(), 0);
  Fill(0, 1, 1);
  Fill(1, 2, 2);
  EXPECT_EQ(leaf.FreeSlot(), 2);
  for (int slot = 2; slot < kLeafSlots; slot++) {
    Fill(slot, static_cast<uint64_t>(slot) + 10, 1);
  }
  EXPECT_EQ(leaf.FreeSlot(), -1);  // full
}

TEST_F(LeafFixture, MinKeyScansValidSlots) {
  bool found = true;
  leaf.MinKey(&found);
  EXPECT_FALSE(found);
  Fill(4, 50, 1);
  Fill(9, 20, 1);
  Fill(12, 90, 1);
  uint64_t min = leaf.MinKey(&found);
  EXPECT_TRUE(found);
  EXPECT_EQ(min, 20u);
}

TEST_F(LeafFixture, LiveCountExcludesFences) {
  Fill(0, 10, 1);
  Fill(1, 20, 0);  // fence entry (tombstoned boundary key)
  Fill(2, 30, 3);
  EXPECT_EQ(leaf.ValidCount(), 3);
  EXPECT_EQ(leaf.LiveCount(), 2);
}

TEST_F(LeafFixture, MinKeyIncludesFences) {
  // Fences must keep anchoring the leaf's low bound for recovery routing.
  Fill(0, 10, 0);  // fence at the minimum
  Fill(1, 20, 2);
  bool found = false;
  EXPECT_EQ(leaf.MinKey(&found), 10u);
  EXPECT_TRUE(found);
}

TEST(LeafLayout, ExactlyOneXpline) {
  static_assert(sizeof(PmLeaf) == 256);
  static_assert(kLeafSlots == 14);
  // Header = meta(8) + ts(8) + fingerprints(14) + pad(2) = 32 bytes.
  EXPECT_EQ(offsetof(PmLeaf, kvs), 32u);
}

}  // namespace
}  // namespace cclbt::core
