// Conformance suite run against EVERY index (CCL-BTree and all baselines):
// model-checked upsert/lookup/remove, ordered scans, update semantics, and a
// multi-threaded smoke test. Keeping the baselines honest matters — the
// paper's comparisons are only meaningful if every competitor is correct.
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/bench/index_factory.h"
#include "src/common/rng.h"

namespace cclbt::bench {
namespace {

std::unique_ptr<kvindex::Runtime> MakeRuntime() {
  kvindex::RuntimeOptions options;
  options.device.pool_bytes = 512 << 20;
  options.device.num_sockets = 2;
  options.device.dimms_per_socket = 2;
  return std::make_unique<kvindex::Runtime>(options);
}

class IndexConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    rt_ = MakeRuntime();
    IndexConfig config;
    config.tree.background_gc = false;
    index_ = MakeIndex(GetParam(), *rt_, config);
    ctx_ = std::make_unique<pmsim::ThreadContext>(rt_->device(), 0, 0);
  }

  std::unique_ptr<kvindex::Runtime> rt_;
  std::unique_ptr<kvindex::KvIndex> index_;
  std::unique_ptr<pmsim::ThreadContext> ctx_;
};

TEST_P(IndexConformanceTest, InsertLookupBasic) {
  index_->Upsert(100, 1);
  index_->Upsert(200, 2);
  uint64_t value = 0;
  EXPECT_TRUE(index_->Lookup(100, &value));
  EXPECT_EQ(value, 1u);
  EXPECT_TRUE(index_->Lookup(200, &value));
  EXPECT_EQ(value, 2u);
  EXPECT_FALSE(index_->Lookup(150, &value));
}

TEST_P(IndexConformanceTest, UpdateReplacesValue) {
  index_->Upsert(7, 1);
  index_->Upsert(7, 2);
  index_->Upsert(7, 3);
  uint64_t value = 0;
  ASSERT_TRUE(index_->Lookup(7, &value));
  EXPECT_EQ(value, 3u);
}

TEST_P(IndexConformanceTest, RemoveHidesKey) {
  index_->Upsert(42, 42);
  index_->Remove(42);
  uint64_t value = 0;
  EXPECT_FALSE(index_->Lookup(42, &value));
  // Re-insert after remove works.
  index_->Upsert(42, 43);
  ASSERT_TRUE(index_->Lookup(42, &value));
  EXPECT_EQ(value, 43u);
}

TEST_P(IndexConformanceTest, SequentialBulkThenVerify) {
  const uint64_t kN = 20000;
  for (uint64_t k = 1; k <= kN; k++) {
    index_->Upsert(k, k * 3);
  }
  for (uint64_t k = 1; k <= kN; k += 7) {
    uint64_t value = 0;
    ASSERT_TRUE(index_->Lookup(k, &value)) << "key " << k;
    EXPECT_EQ(value, k * 3);
  }
}

TEST_P(IndexConformanceTest, RandomModelCheck) {
  std::map<uint64_t, uint64_t> model;
  Rng rng(12);
  for (int i = 0; i < 20000; i++) {
    uint64_t key = rng.NextBounded(5000) + 1;
    if (rng.NextBounded(10) < 8) {
      uint64_t value = rng.Next() | 1;
      index_->Upsert(key, value);
      model[key] = value;
    } else {
      index_->Remove(key);
      model.erase(key);
    }
  }
  index_->FlushAll();
  for (uint64_t key = 1; key <= 5000; key++) {
    uint64_t value = 0;
    bool found = index_->Lookup(key, &value);
    auto it = model.find(key);
    ASSERT_EQ(found, it != model.end()) << GetParam() << " key " << key;
    if (found) {
      EXPECT_EQ(value, it->second) << GetParam() << " key " << key;
    }
  }
}

TEST_P(IndexConformanceTest, ScanSortedAndComplete) {
  for (uint64_t k = 1; k <= 2000; k++) {
    index_->Upsert(k * 2, k);
  }
  std::vector<kvindex::KeyValue> out(200);
  size_t n = index_->Scan(501, 100, out.data());
  ASSERT_EQ(n, 100u) << GetParam();
  EXPECT_EQ(out[0].key, 502u);
  for (size_t i = 1; i < n; i++) {
    EXPECT_EQ(out[i].key, out[i - 1].key + 2) << GetParam() << " at " << i;
  }
}

TEST_P(IndexConformanceTest, ScanAfterDeletesSkipsRemoved) {
  for (uint64_t k = 1; k <= 300; k++) {
    index_->Upsert(k, k);
  }
  for (uint64_t k = 1; k <= 300; k += 3) {
    index_->Remove(k);
  }
  std::vector<kvindex::KeyValue> out(400);
  size_t n = index_->Scan(1, 400, out.data());
  EXPECT_EQ(n, 200u) << GetParam();
  for (size_t i = 0; i < n; i++) {
    EXPECT_NE(out[i].key % 3, 1u) << GetParam();
  }
}

TEST_P(IndexConformanceTest, ScanShortAtTail) {
  for (uint64_t k = 1; k <= 50; k++) {
    index_->Upsert(k, k);
  }
  std::vector<kvindex::KeyValue> out(100);
  EXPECT_EQ(index_->Scan(40, 100, out.data()), 11u);
  EXPECT_EQ(index_->Scan(10000, 100, out.data()), 0u);
}

TEST_P(IndexConformanceTest, FootprintIsPlausible) {
  for (uint64_t k = 1; k <= 30000; k++) {
    index_->Upsert(Mix64(k) | 1, k);
  }
  auto footprint = index_->Footprint();
  EXPECT_GT(footprint.pm_bytes + footprint.dram_bytes, 30000u * 16)
      << GetParam() << " stores less than the raw data";
}

TEST_P(IndexConformanceTest, ConcurrentMixedSmoke) {
  const int kThreads = 4;
  const uint64_t kPerThread = 8000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([this, t] {
      pmsim::ThreadContext ctx(rt_->device(), t % 2, t + 1);
      Rng rng(static_cast<uint64_t>(t) + 500);
      for (uint64_t i = 0; i < kPerThread; i++) {
        uint64_t key = static_cast<uint64_t>(t) * kPerThread + i + 1;
        index_->Upsert(Mix64(key) | 1, key);
        if (i % 16 == 0) {
          uint64_t value = 0;
          index_->Lookup(Mix64(rng.NextBounded(key) + 1) | 1, &value);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < kThreads; t++) {
    for (uint64_t i = 0; i < kPerThread; i += 211) {
      uint64_t key = static_cast<uint64_t>(t) * kPerThread + i + 1;
      uint64_t value = 0;
      ASSERT_TRUE(index_->Lookup(Mix64(key) | 1, &value)) << GetParam();
      EXPECT_EQ(value, key);
    }
  }
}

// --- crash/recovery conformance ---------------------------------------------------
//
// Gated on the Recoverable capability (DESIGN.md §9): indexes that declare
// not_recoverable are skipped, not faked — recovery is never simulated by
// reformatting and replaying.

TEST_P(IndexConformanceTest, RecoveryCapabilityIsDeclaredHonestly) {
  const bool expect_recoverable = GetParam() == "cclbtree" || GetParam() == "fastfair";
  EXPECT_EQ(index_->recoverable(), expect_recoverable) << GetParam();
  if (!index_->recoverable()) {
    // Torn tolerance is meaningless without recoverability.
    EXPECT_FALSE(index_->tolerates_torn_crash()) << GetParam();
  }
}

TEST_P(IndexConformanceTest, CrashRecoveryRestoresAckedState) {
  if (!index_->recoverable()) {
    GTEST_SKIP() << GetParam() << " declares not_recoverable";
  }
  std::map<uint64_t, uint64_t> model;
  Rng rng(31);
  for (int i = 0; i < 15000; i++) {
    uint64_t key = Mix64(rng.NextBounded(4000) + 1) | 1;
    if (rng.NextBounded(10) < 8) {
      uint64_t value = rng.Next() | 1;
      index_->Upsert(key, value);
      model[key] = value;
    } else {
      index_->Remove(key);
      model.erase(key);
    }
  }
  ctx_.reset();
  index_.reset();
  rt_->device().Crash();
  std::string error;
  ASSERT_TRUE(rt_->Reopen(&error)) << error;
  IndexConfig config;
  config.tree.background_gc = false;
  index_ = RecoverIndex(GetParam(), *rt_, config);
  ASSERT_NE(index_, nullptr) << GetParam() << " failed to recover";
  ctx_ = std::make_unique<pmsim::ThreadContext>(rt_->device(), 0, 0);
  for (uint64_t probe = 1; probe <= 4000; probe++) {
    uint64_t key = Mix64(probe) | 1;
    uint64_t value = 0;
    bool found = index_->Lookup(key, &value);
    auto it = model.find(key);
    ASSERT_EQ(found, it != model.end()) << GetParam() << " key " << key;
    if (found) {
      EXPECT_EQ(value, it->second) << GetParam() << " key " << key;
    }
  }
}

TEST_P(IndexConformanceTest, TornCrashRecoveryRestoresAckedState) {
  if (!index_->recoverable()) {
    GTEST_SKIP() << GetParam() << " declares not_recoverable";
  }
  if (!index_->tolerates_torn_crash()) {
    GTEST_SKIP() << GetParam() << " declares torn crashes out of scope";
  }
  std::map<uint64_t, uint64_t> model;
  Rng rng(47);
  for (int i = 0; i < 12000; i++) {
    uint64_t key = Mix64(rng.NextBounded(3000) + 1) | 1;
    uint64_t value = rng.Next() | 1;
    index_->Upsert(key, value);
    model[key] = value;
  }
  ctx_.reset();
  index_.reset();
  rt_->device().CrashTorn(/*seed=*/777);
  std::string error;
  ASSERT_TRUE(rt_->Reopen(&error)) << error;
  IndexConfig config;
  config.tree.background_gc = false;
  index_ = RecoverIndex(GetParam(), *rt_, config);
  ASSERT_NE(index_, nullptr) << GetParam() << " failed to recover";
  ctx_ = std::make_unique<pmsim::ThreadContext>(rt_->device(), 0, 0);
  for (const auto& [key, value] : model) {
    uint64_t got = 0;
    ASSERT_TRUE(index_->Lookup(key, &got)) << GetParam() << " lost key " << key;
    EXPECT_EQ(got, value) << GetParam() << " key " << key;
  }
}

TEST_P(IndexConformanceTest, RecoveredIndexAcceptsNewWrites) {
  if (!index_->recoverable()) {
    GTEST_SKIP() << GetParam() << " declares not_recoverable";
  }
  for (uint64_t k = 1; k <= 3000; k++) {
    index_->Upsert(k * 2, k);
  }
  ctx_.reset();
  index_.reset();
  rt_->device().Crash();
  std::string error;
  ASSERT_TRUE(rt_->Reopen(&error)) << error;
  IndexConfig config;
  config.tree.background_gc = false;
  index_ = RecoverIndex(GetParam(), *rt_, config);
  ASSERT_NE(index_, nullptr) << GetParam();
  ctx_ = std::make_unique<pmsim::ThreadContext>(rt_->device(), 0, 0);
  for (uint64_t k = 1; k <= 3000; k++) {
    index_->Upsert(k * 2 + 1, k);
  }
  std::vector<kvindex::KeyValue> out(100);
  size_t n = index_->Scan(1000, 100, out.data());
  ASSERT_EQ(n, 100u) << GetParam();
  for (size_t i = 1; i < n; i++) {
    EXPECT_EQ(out[i].key, out[i - 1].key + 1) << GetParam() << " at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, IndexConformanceTest,
                         ::testing::Values("cclbtree", "fptree", "lbtree", "pactree", "fastfair",
                                           "utree", "dptree", "flatstore", "lsmstore"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) { return param_info.param; });

}  // namespace
}  // namespace cclbt::bench
