// Tests for the metrics registry (src/metrics): the unified log-bucketed
// histogram (including the former src/common/histogram.h suite, migrated
// here when the implementations were unified), shard-merge conservation
// across real OS threads, the disabled-gate zero-registration contract, the
// deterministic .pmmetrics epoch series (bit-identical across identical
// RunConfigs, including with background GC), the per-epoch component-bytes
// sum invariant, and the .pmmetrics serialize/parse round trip.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/bench/driver.h"
#include "src/common/rng.h"
#include "src/metrics/histogram.h"
#include "src/metrics/metrics.h"
#include "src/metrics/pmmetrics.h"

namespace cclbt {
namespace {

using metrics::Histogram;

// --- histogram: suite migrated from tests/common_test.cc -------------------

TEST(Histogram, PercentilesOrdered) {
  Histogram hist;
  Rng rng(1);
  for (int i = 0; i < 100000; i++) {
    hist.Record(rng.NextBounded(1000000));
  }
  EXPECT_LE(hist.Percentile(50), hist.Percentile(90));
  EXPECT_LE(hist.Percentile(90), hist.Percentile(99));
  EXPECT_LE(hist.Percentile(99), hist.Percentile(99.9));
  EXPECT_LE(hist.Percentile(99.9), hist.Max());
  EXPECT_GE(hist.Percentile(0), hist.Min());
}

TEST(Histogram, ExactForSmallValues) {
  Histogram hist;
  for (uint64_t v = 0; v < 20; v++) {
    hist.Record(v);
  }
  EXPECT_EQ(hist.Min(), 0u);
  EXPECT_EQ(hist.Max(), 19u);
  EXPECT_EQ(hist.Count(), 20u);
}

TEST(Histogram, MedianApproximatelyCorrect) {
  Histogram hist;
  for (uint64_t v = 1; v <= 10000; v++) {
    hist.Record(v);
  }
  uint64_t median = hist.Percentile(50);
  EXPECT_NEAR(static_cast<double>(median), 5000.0, 5000.0 * 0.05);
}

TEST(Histogram, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  a.Record(100);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_EQ(a.Min(), 100u);
  EXPECT_EQ(a.Max(), 1000000u);
}

TEST(Histogram, EmptyReturnsZero) {
  Histogram hist;
  EXPECT_EQ(hist.Percentile(99), 0u);
  EXPECT_EQ(hist.Min(), 0u);
  EXPECT_EQ(hist.Mean(), 0.0);
}

// --- histogram: percentile oracle and boundedness --------------------------

// Percentile(p) reports the upper bound of the bucket holding the rank-p
// value, clamped into [Min, Max]. Against a sorted-vector oracle that means:
// never below the true rank value, never above that value's bucket bound.
TEST(Histogram, PercentileMatchesSortedOracle) {
  Histogram hist;
  Rng rng(7);
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; i++) {
    // Mixed magnitudes: shift a full-width draw by 0..49 bits so every
    // power-of-two range (exact unit buckets through wide buckets) is hit.
    uint64_t v = rng.Next() >> rng.NextBounded(50);
    values.push_back(v);
    hist.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    auto rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(values.size()));
    rank = std::min(rank, static_cast<uint64_t>(values.size() - 1));
    uint64_t oracle = values[rank];
    uint64_t got = hist.Percentile(p);
    EXPECT_GE(got, oracle) << "p=" << p;
    EXPECT_LE(got, Histogram::BucketUpperBound(Histogram::BucketFor(oracle))) << "p=" << p;
  }
}

// The top bucket has a well-defined saturated bound: bucket bounds are
// non-decreasing all the way up (the previous implementation wrapped around
// uint64 and made the max bucket effectively open-ended).
TEST(Histogram, TopBucketBoundedNoOverflow) {
  uint64_t prev = 0;
  for (int i = 1; i < Histogram::kNumBuckets; i++) {
    uint64_t bound = Histogram::BucketUpperBound(i);
    EXPECT_GE(bound, prev) << "bucket " << i;
    prev = bound;
  }
  EXPECT_EQ(Histogram::MaxTrackable(), ~0ULL);

  Histogram hist;
  hist.Record(~0ULL);
  hist.Record(1);
  EXPECT_EQ(hist.Percentile(100), ~0ULL);
  EXPECT_EQ(hist.Percentile(0), 1u);
}

TEST(Histogram, DeltaIsWindowed) {
  Histogram hist;
  for (int i = 0; i < 100; i++) {
    hist.Record(500);
  }
  Histogram earlier = hist;
  for (int i = 0; i < 60; i++) {
    hist.Record(1000000);
  }
  Histogram window = hist.Delta(earlier);
  EXPECT_EQ(window.Count(), 60u);
  EXPECT_EQ(window.Sum(), 60u * 1000000u);
  // Window extremes are quantized bucket bounds around the one recorded value.
  EXPECT_GT(window.Min(), 500u);
  EXPECT_GE(window.Percentile(50), 1000000u);
  EXPECT_LE(window.Percentile(50),
            Histogram::BucketUpperBound(Histogram::BucketFor(1000000)));
}

// --- registry: gate and shard lifecycle -------------------------------------

// The disabled gate must never register a shard: one relaxed load, no TLS
// allocation, no registry mutation (the <=2% disabled-cost budget).
TEST(MetricsRegistry, DisabledGateRegistersNoShard) {
  metrics::SetEnabled(false);
  size_t before = metrics::NumShards();
  std::thread t([] {
    for (int i = 0; i < 1000; i++) {
      metrics::Add(metrics::Counter::kBufferAbsorbs);
      metrics::RecordOp(metrics::OpKind::kUpsert, 100, 100);
    }
  });
  t.join();
  EXPECT_EQ(metrics::NumShards(), before);
}

// Counts recorded by real OS threads are conserved through shard merge, even
// though the threads (and their TLS bindings) are gone by snapshot time.
TEST(MetricsRegistry, ShardMergeConservation) {
  metrics::SetEnabled(true);
  metrics::Reset();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  uint64_t expected_ops = 0;
  for (int t = 0; t < kThreads; t++) {
    uint64_t ops = 1000 + static_cast<uint64_t>(t);
    expected_ops += ops;
    threads.emplace_back([t, ops] {
      for (uint64_t i = 0; i < ops; i++) {
        metrics::Add(metrics::Counter::kBufferAbsorbs);
        metrics::Add(metrics::Counter::kWalAppendBytes, 64);
        metrics::RecordOp(metrics::OpKind::kUpsert, 100 + static_cast<uint64_t>(t), 50);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  metrics::MetricsSnapshot snap = metrics::Snapshot();
  metrics::SetEnabled(false);
  EXPECT_EQ(snap.counter(metrics::Counter::kBufferAbsorbs), expected_ops);
  EXPECT_EQ(snap.counter(metrics::Counter::kWalAppendBytes), 64 * expected_ops);
  EXPECT_EQ(snap.virt(metrics::OpKind::kUpsert).Count(), expected_ops);
  EXPECT_EQ(snap.wall(metrics::OpKind::kUpsert).Count(), expected_ops);
  EXPECT_GE(metrics::NumShards(), 1u);
}

// --- epoch series: determinism and invariants -------------------------------

bench::RunConfig MetricsConfig() {
  bench::RunConfig config;
  config.threads = 4;
  config.threads_per_socket = 2;
  config.warm_keys = 20'000;
  config.ops = 20'000;
  config.op = OpType::kInsert;
  config.seed = 1234;
  config.metrics = true;
  return config;
}

// The serialized epoch series is the deterministic payload of a .pmmetrics
// file: identical RunConfigs must produce bit-identical bytes (DESIGN.md §10
// extended to time-resolved metrics).
TEST(MetricsEpochSeries, BitIdenticalAcrossRuns) {
  bench::IndexConfig index_config;
  index_config.tree.background_gc = false;
  bench::RunConfig config = MetricsConfig();
  bench::RunResult first = bench::RunIndexWorkload("cclbtree", config, index_config);
  bench::RunResult second = bench::RunIndexWorkload("cclbtree", config, index_config);
  ASSERT_FALSE(first.epochs.empty());
  EXPECT_EQ(metrics::SerializeEpochSeries(first.epochs),
            metrics::SerializeEpochSeries(second.epochs));
}

// Same property with background GC enabled: GC rounds, WAL release bytes and
// the gc_rounds gauge land in epoch records and must stay deterministic
// under the virtual-time GC scheduling.
TEST(MetricsEpochSeries, BackgroundGcBitIdenticalAcrossRuns) {
  bench::IndexConfig index_config;
  index_config.tree.background_gc = true;
  bench::RunConfig config = MetricsConfig();
  bench::RunResult first = bench::RunIndexWorkload("cclbtree", config, index_config);
  bench::RunResult second = bench::RunIndexWorkload("cclbtree", config, index_config);
  ASSERT_FALSE(first.epochs.empty());
  EXPECT_EQ(metrics::SerializeEpochSeries(first.epochs),
            metrics::SerializeEpochSeries(second.epochs));
}

// Every epoch's per-component media bytes must sum to that epoch's windowed
// media_write_bytes, epoch windows must tile the measurement phase exactly
// (byte and op totals telescope to the run totals), and window ends must be
// strictly increasing.
TEST(MetricsEpochSeries, ComponentSumsAndWindowTiling) {
  bench::IndexConfig index_config;
  index_config.tree.background_gc = true;
  bench::RunConfig config = MetricsConfig();
  bench::RunResult result = bench::RunIndexWorkload("cclbtree", config, index_config);
  ASSERT_FALSE(result.epochs.empty());
  uint64_t media_bytes = 0;
  uint64_t ops = 0;
  uint64_t prev_t = 0;
  for (const metrics::EpochRecord& e : result.epochs) {
    EXPECT_EQ(e.ComponentBytesTotal(), e.media_write_bytes) << "epoch " << e.index;
    EXPECT_GT(e.t_ns, prev_t) << "epoch " << e.index;
    prev_t = e.t_ns;
    media_bytes += e.media_write_bytes;
    ops += e.TotalOps();
  }
  EXPECT_EQ(media_bytes, result.stats.media_write_bytes);
  EXPECT_EQ(ops, config.ops);
  EXPECT_EQ(result.epochs.back().index, result.epochs.size() - 1);
}

// A run without the metrics flag (and no CCL_METRICS / latency collection)
// produces no epoch series and no registry activity.
TEST(MetricsEpochSeries, DisabledByDefault) {
  bench::IndexConfig index_config;
  index_config.tree.background_gc = false;
  bench::RunConfig config = MetricsConfig();
  config.metrics = false;
  bench::RunResult result = bench::RunIndexWorkload("cclbtree", config, index_config);
  EXPECT_TRUE(result.epochs.empty());
  EXPECT_EQ(result.metrics_snapshot.virt(metrics::OpKind::kUpsert).Count(), 0u);
}

// --- .pmmetrics: serialize/parse round trip ---------------------------------

TEST(PmMetricsFormat, SerializeParseRoundTrip) {
  metrics::PmMetricsFile file;
  file.header.label = "round \"trip\"";  // exercises string escaping
  file.header.epoch_ns = 1000000;
  file.header.threads = 4;
  file.header.ops = 20000;
  for (int k = 0; k < metrics::kNumOpKinds; k++) {
    file.header.op_kinds.push_back(metrics::OpKindName(static_cast<metrics::OpKind>(k)));
  }
  for (int c = 0; c < metrics::kNumCounters; c++) {
    file.header.counters.push_back(metrics::CounterName(static_cast<metrics::Counter>(c)));
  }
  file.header.components = {"other", "wal", "leaf"};

  metrics::EpochRecord e;
  e.index = 0;
  e.t_ns = 1000000;
  e.ops = {10, 2, 0, 0};
  e.p50_ns = {100, 50, 0, 0};
  e.p99_ns = {200, 60, 0, 0};
  e.p999_ns = {300, 70, 0, 0};
  e.user_bytes = 160;
  e.xpbuffer_write_bytes = 512;
  e.media_write_bytes = 384;
  e.media_read_bytes = 256;
  e.line_flushes = 8;
  e.fences = 4;
  e.comp_bytes = {0, 256, 128};
  e.xpbuf_resident = 2;
  e.xpbuf_insertions = 8;
  e.xpbuf_evictions = 6;
  e.counters.assign(static_cast<size_t>(metrics::kNumCounters), 3);
  e.gauges = {{"gc_rounds", 5}, {"leaf_bytes", 4096}};
  file.epochs.push_back(e);

  file.has_summary = true;
  file.summary.elapsed_virtual_ns = 1234567;
  for (int k = 0; k < metrics::kNumOpKinds; k++) {
    file.summary.virt.push_back({10, 100, 200, 300, 400});
    file.summary.wall.push_back({10, 90, 180, 270, 360});
  }

  std::string path = ::testing::TempDir() + "/roundtrip.pmmetrics";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << metrics::SerializeHeader(file.header) << metrics::SerializeEpochSeries(file.epochs)
        << metrics::SerializeSummary(file.summary);
  }

  metrics::PmMetricsFile parsed;
  std::string error;
  ASSERT_TRUE(metrics::ReadPmMetricsFile(path, &parsed, &error)) << error;
  EXPECT_EQ(metrics::SerializeHeader(parsed.header), metrics::SerializeHeader(file.header));
  EXPECT_EQ(metrics::SerializeEpochSeries(parsed.epochs),
            metrics::SerializeEpochSeries(file.epochs));
  ASSERT_TRUE(parsed.has_summary);
  EXPECT_EQ(metrics::SerializeSummary(parsed.summary), metrics::SerializeSummary(file.summary));

  // The component-bytes sum invariant holds for the synthetic epoch too.
  EXPECT_EQ(parsed.epochs[0].ComponentBytesTotal(), parsed.epochs[0].media_write_bytes);
}

}  // namespace
}  // namespace cclbt
