#!/usr/bin/env python3
"""Benchmark regression gate: freshly staged BENCH_*.json vs bench/baselines/.

The baselines directory holds checked-in benchmark result JSONs (google-
benchmark format, plus optionally the bench_pmsim_hotpath schema) generated
by `run_benches.sh --baseline-update` at the scale/filter recorded in its
MANIFEST. The gate re-stages the same benches (run_benches.sh --gate-stage)
and compares entry-by-entry:

  * virtual metrics (every user counter: Mops, XBI, CLI, mwB_*, virt_ms, ...)
    must match the baseline EXACTLY — they are derived from pmsim virtual
    time and the sequential driver schedule, so any drift is a real behavior
    change, not noise (DESIGN.md s10);
  * wall-clock fields (real_time, cpu_time, wall_ms, mops_wall) may regress
    only within a noise band (default: 1.0 = 2x slower fails, and only when
    the absolute slowdown also exceeds --wall-floor-ms);
  * entries/files present on one side but not the other fail the gate
    (a new bench or renamed case needs `run_benches.sh --baseline-update`).

Usage:
  tools/bench_gate.py --staged DIR [--baselines DIR] [--wall-band F]
  tools/bench_gate.py --self-test
"""
import argparse
import glob
import json
import os
import sys
import tempfile

DEFAULT_BASELINES = os.path.join(os.path.dirname(__file__), "..", "bench", "baselines")

# Wall-clock fields: banded, never exact. Everything else numeric is virtual.
WALL_KEYS = {"real_time", "cpu_time", "wall_ms", "mops_wall"}

# google-benchmark bookkeeping that says nothing about behavior.
SKIP_KEYS = {
    "family_index", "per_family_instance_index", "run_name", "run_type",
    "repetitions", "repetition_index", "iterations", "time_unit", "threads",
}


def read_manifest(baselines_dir):
    """Parses MANIFEST key=value lines; returns a dict (possibly empty)."""
    manifest = {}
    path = os.path.join(baselines_dir, "MANIFEST")
    if os.path.isfile(path):
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line or line.startswith("#") or "=" not in line:
                    continue
                key, _, value = line.partition("=")
                manifest[key.strip()] = value.strip()
    return manifest


def entries_by_name(data, path):
    """Returns {case_name: {field: value}} for either supported schema."""
    if isinstance(data, dict) and data.get("bench") == "pmsim_hotpath":
        out = {}
        for scenario in data.get("scenarios", []):
            out[scenario["name"]] = {
                k: v for k, v in scenario.items() if k != "name"
            }
        return out
    if isinstance(data, dict) and "benchmarks" in data:
        out = {}
        for entry in data["benchmarks"]:
            out[entry["name"]] = {
                k: v for k, v in entry.items()
                if k != "name" and k not in SKIP_KEYS
            }
        return out
    raise ValueError(f"{path}: unrecognized results schema")


def compare_case(name, base, staged, wall_band, wall_floor_ms, problems):
    for key in sorted(set(base) | set(staged)):
        if key not in base:
            problems.append(f"{name}: new field {key!r} absent from baseline")
            continue
        if key not in staged:
            problems.append(f"{name}: field {key!r} missing from staged run")
            continue
        bval, sval = base[key], staged[key]
        if not isinstance(bval, (int, float)) or not isinstance(sval, (int, float)):
            if bval != sval:
                problems.append(f"{name}: {key} changed {bval!r} -> {sval!r}")
            continue
        if key in WALL_KEYS:
            # Only a *slowdown* is a regression, and only when it is both
            # relatively outside the band and absolutely non-trivial (tiny
            # wall times are pure scheduler noise). mops_wall is a rate, so
            # the regression direction flips.
            if key == "mops_wall":
                slow = bval > 0 and sval < bval / (1.0 + wall_band)
                abs_ok = True  # rate field: band alone decides
            else:
                slow = sval > bval * (1.0 + wall_band)
                abs_ok = (sval - bval) > wall_floor_ms
            if slow and abs_ok:
                problems.append(
                    f"{name}: wall regression {key} {bval:.3f} -> {sval:.3f} "
                    f"(band {wall_band:.2f})")
        else:
            if bval != sval:
                problems.append(
                    f"{name}: VIRTUAL metric {key} changed {bval!r} -> {sval!r} "
                    "(virtual metrics must match baselines exactly; if the "
                    "change is intended, run ./run_benches.sh --baseline-update)")


def compare_dirs(baselines_dir, staged_dir, wall_band, wall_floor_ms):
    """Returns a list of problem strings (empty = gate passes)."""
    problems = []
    baseline_files = sorted(
        os.path.basename(p)
        for p in glob.glob(os.path.join(baselines_dir, "BENCH_*.json")))
    if not baseline_files:
        return [f"no BENCH_*.json baselines in {baselines_dir}"]
    for fname in baseline_files:
        base_path = os.path.join(baselines_dir, fname)
        staged_path = os.path.join(staged_dir, fname)
        if not os.path.isfile(staged_path):
            problems.append(f"{fname}: staged run produced no such file")
            continue
        try:
            with open(base_path, encoding="utf-8") as f:
                base = entries_by_name(json.load(f), base_path)
            with open(staged_path, encoding="utf-8") as f:
                staged = entries_by_name(json.load(f), staged_path)
        except (ValueError, KeyError, json.JSONDecodeError) as e:
            problems.append(f"{fname}: {e}")
            continue
        for name in sorted(set(base) | set(staged)):
            if name not in staged:
                problems.append(f"{fname}: case {name!r} missing from staged run")
            elif name not in base:
                problems.append(f"{fname}: case {name!r} has no baseline "
                                "(run ./run_benches.sh --baseline-update)")
            else:
                compare_case(f"{fname}:{name}", base[name], staged[name],
                             wall_band, wall_floor_ms, problems)
    return problems


# ---------------------------------------------------------------------------
# Self-test: seed a fake baseline + staged pair per scenario and assert the
# gate's verdict, including that a seeded regression IS detected.

def _gb_file(mops, xbi, real_time):
    return {
        "context": {"host_name": "selftest"},
        "benchmarks": [{
            "name": "fig03/cclbtree/iterations:1",
            "run_name": "fig03/cclbtree/iterations:1",
            "run_type": "iteration",
            "iterations": 1,
            "real_time": real_time,
            "cpu_time": real_time,
            "time_unit": "ms",
            "Mops": mops,
            "XBI": xbi,
            "mwB_leaf": 123456.0,
        }],
    }


def _pmsim_file(wall_ms, heap_allocs):
    return {
        "bench": "pmsim_hotpath",
        "scenarios": [{
            "name": "flush_heavy_1t", "threads": 1, "ops": 1000,
            "wall_ms": wall_ms, "mops_wall": 1000.0 / (wall_ms * 1e3),
            "heap_allocs_measured": heap_allocs,
        }],
    }


def self_test():
    cases = [
        # (description, baseline json, staged json, expect_pass)
        ("identical results pass",
         _gb_file(3.5, 17.3, 240.0), _gb_file(3.5, 17.3, 240.0), True),
        ("virtual metric drift detected",
         _gb_file(3.5, 17.3, 240.0), _gb_file(3.5, 17.4, 240.0), False),
        ("wall regression beyond band detected",
         _gb_file(3.5, 17.3, 240.0), _gb_file(3.5, 17.3, 900.0), False),
        ("wall noise within band tolerated",
         _gb_file(3.5, 17.3, 240.0), _gb_file(3.5, 17.3, 310.0), True),
        ("wall speedup always tolerated",
         _gb_file(3.5, 17.3, 240.0), _gb_file(3.5, 17.3, 60.0), True),
        ("pmsim heap_allocs drift detected",
         _pmsim_file(200.0, 0), _pmsim_file(205.0, 3), False),
        ("pmsim wall noise tolerated",
         _pmsim_file(200.0, 0), _pmsim_file(260.0, 0), True),
        ("missing staged file detected",
         _gb_file(3.5, 17.3, 240.0), None, False),
    ]
    failures = []
    for desc, base, staged, expect_pass in cases:
        with tempfile.TemporaryDirectory(prefix="bench_gate_selftest_") as tmp:
            bdir = os.path.join(tmp, "baselines")
            sdir = os.path.join(tmp, "staged")
            os.makedirs(bdir)
            os.makedirs(sdir)
            with open(os.path.join(bdir, "BENCH_selftest.json"), "w",
                      encoding="utf-8") as f:
                json.dump(base, f)
            if staged is not None:
                with open(os.path.join(sdir, "BENCH_selftest.json"), "w",
                          encoding="utf-8") as f:
                    json.dump(staged, f)
            problems = compare_dirs(bdir, sdir, wall_band=1.0, wall_floor_ms=50.0)
            if bool(problems) == expect_pass:
                verdict = "passed" if not problems else f"failed ({problems[0]})"
                failures.append(f"{desc}: gate {verdict}, expected "
                                f"{'pass' if expect_pass else 'fail'}")
    if failures:
        print("bench_gate self-test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"bench_gate self-test OK ({len(cases)} scenarios)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--staged", help="directory with freshly staged BENCH_*.json")
    parser.add_argument("--baselines", default=DEFAULT_BASELINES)
    parser.add_argument("--wall-band", type=float, default=1.0,
                        help="allowed fractional wall-time slowdown (1.0 = 2x)")
    parser.add_argument("--wall-floor-ms", type=float, default=50.0,
                        help="absolute slowdown below this is never flagged")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.staged:
        parser.error("--staged DIR is required (or use --self-test)")
    baselines = os.path.abspath(args.baselines)
    manifest = read_manifest(baselines)
    if manifest:
        print(f"bench_gate: baselines generated at scale={manifest.get('scale', '?')} "
              f"filter={manifest.get('filter', '?')}")
    problems = compare_dirs(baselines, os.path.abspath(args.staged),
                            args.wall_band, args.wall_floor_ms)
    if problems:
        print(f"bench_gate: {len(problems)} regression(s) vs {baselines}:")
        for p in problems:
            print(f"  {p}")
        return 1
    print("bench_gate: OK (virtual metrics exact, wall within band)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
