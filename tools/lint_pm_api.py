#!/usr/bin/env python3
"""Repo-rule linter for the pmsim persistence API and determinism contract.

Everything in this repo runs against the simulated PM device, so raw x86
persistence intrinsics must never appear outside src/pmsim/ (where a real-PM
backend would live), and nothing inside a measured region may consult wall
clocks or nondeterministic RNGs — virtual-metric tails are diffed bit-for-bit
by the determinism CI gate (DESIGN.md s10).

Rules (R1-R7; see RULES below for the authoritative patterns):
  R1  raw persistence intrinsics (_mm_clwb/_mm_clflush*/_mm_sfence/...,
      __builtin_ia32_*, inline asm) outside src/pmsim/
  R2  wall-clock (std::chrono clocks, gettimeofday, sleep_for/sleep_until)
      in src/ or bench/; sleep_for/sleep_until additionally banned in tests
      (tests may use steady_clock deadlines to bound waits, never sleeps)
  R3  nondeterministic RNG (rand/srand/std::random_device/mt19937) in src/
      or bench/ — seeded cclbt::Rng (src/common/rng.h) is the sanctioned RNG
  R4  x86 intrinsic headers (<x86intrin.h>/<immintrin.h>/<emmintrin.h>)
      outside src/pmsim/ and src/common/simd.h
  R5  raw SIMD intrinsics (_mm_*/_mm256_*/_mm512_*) outside src/pmsim/ and
      src/common/simd.h — index code must go through the dispatched
      primitives in cclbt::simd so every probe keeps a scalar fallback and
      the CCL_SIMD override applies everywhere
  R6  wall-clock reads in metric-recording code (src/metrics/) outside the
      sanctioned clock shim src/metrics/clock.h — everything wall-derived
      must flow through metrics::WallNowNs() so it stays quarantined in the
      .pmmetrics summary record, never the deterministic epoch series
  R7  raw lock primitives (std::mutex/std::shared_mutex/pthread locks/
      atomic_flag spins/hand-rolled acquire-ordered CAS or exchange loops)
      outside src/common/lock.h — every lock must be a sync:: wrapper so the
      clang thread-safety annotations and the lockcheck observer (DESIGN.md
      s16) see every acquire; checker-internal mutexes opt out per line with
      `lint_pm_api: allow` (their serialization must stay invisible to the
      observer). One-shot relaxed exchange flags (crash_injector) do not
      match: the patterns require acquire ordering inside a spin loop.

Usage:
  tools/lint_pm_api.py [--root DIR]   # lint the tree, exit 1 on violations
  tools/lint_pm_api.py --self-test    # seed violations in a temp tree and
                                      # assert every rule fires, then make
                                      # sure the real tree passes
"""

import argparse
import os
import re
import sys
import tempfile

# Directories scanned, relative to the repo root.
SCAN_DIRS = ("src", "bench", "tests", "tools", "examples")

CXX_EXTS = (".cc", ".h")

# Wall-clock sleeps are banned everywhere: a sleeping test is a flaky test,
# and a sleeping bench perturbs the op stream. Waiting code polls virtual
# state under a steady_clock *deadline* instead (see gc_scheduling_test.cc).
SLEEP_RE = re.compile(r"sleep_for|sleep_until|\busleep\s*\(|\bnanosleep\s*\(")

# Wall-clock reads; allowed in tests (deadlines) and in the two benches that
# measure real elapsed time by design (hotpath A/B, recovery wall time).
WALLCLOCK_RE = re.compile(
    r"std::chrono::(steady_clock|system_clock|high_resolution_clock)"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\("
)
WALLCLOCK_FILE_ALLOWLIST = {
    "bench/bench_pmsim_hotpath.cc",   # wall-clock A/B parity is the product
    "bench/bench_fig17_recovery.cc",  # recovery wall time is the figure
}

INTRINSIC_RE = re.compile(
    r"_mm_(clwb|clflush|clflushopt|sfence|mfence|stream_\w+)\s*\("
    r"|__builtin_ia32_\w+"
    r"|\b__asm__\b|\basm\s*(volatile)?\s*\("
)
INTRINSIC_HEADER_RE = re.compile(r'#\s*include\s*<(x86intrin|immintrin|emmintrin)\.h>')

# Any _mm*_ intrinsic call: _mm_, _mm256_, _mm512_. The persistence subset is
# R1 (banned even in src/common/simd.h); this rule fences off general SIMD.
SIMD_INTRINSIC_RE = re.compile(r"\b_mm\d*_\w+\s*\(")

# The one sanctioned home for SIMD outside the simulator (DESIGN.md s12).
SIMD_HOME = "src/common/simd.h"

# The one sanctioned wall-clock shim for metric recording (metrics::WallNowNs).
METRICS_CLOCK_HOME = "src/metrics/clock.h"

NONDET_RNG_RE = re.compile(
    r"std::random_device|std::mt19937|\bsrand\s*\(|[^_\w.]rand\s*\(\s*\)"
)

# Raw lock primitives: standard mutex types, pthread locks, atomic_flag
# spins, and hand-rolled lock loops (acquire-ordered exchange/CAS inside a
# while — a relaxed one-shot exchange or a relaxed CAS max-counter loop is
# not a lock and must not match).
RAW_LOCK_RE = re.compile(
    r"\bstd::(recursive_|timed_|recursive_timed_)?mutex\b"
    r"|\bstd::shared_(timed_)?mutex\b"
    r"|\bpthread_(mutex|rwlock|spin|cond)\w*"
    r"|\.test_and_set\s*\("
    r"|while\s*\(.*\.(exchange|compare_exchange_\w+)\s*\(.*memory_order_acquire"
)

# The one sanctioned home for lock primitives (DESIGN.md s16).
LOCK_HOME = "src/common/lock.h"

# (rule, regex, predicate(relpath) -> bool applies, message)
RULES = [
    (
        "R1",
        INTRINSIC_RE,
        lambda p: not p.startswith("src/pmsim/"),
        "raw persistence intrinsic / inline asm outside src/pmsim/ "
        "(use pmsim::FlushLine/Fence/Persist)",
    ),
    (
        "R2",
        SLEEP_RE,
        lambda p: True,
        "wall-clock sleep (poll virtual state under a steady_clock deadline instead)",
    ),
    (
        "R2",
        WALLCLOCK_RE,
        lambda p: (
            p.startswith("src/")
            and not p.startswith("src/pmsim/")
            and p != METRICS_CLOCK_HOME
        )
        or (p.startswith("bench/") and p not in WALLCLOCK_FILE_ALLOWLIST),
        "wall-clock read in measured code (use pmsim virtual time)",
    ),
    (
        "R3",
        NONDET_RNG_RE,
        lambda p: p.startswith("src/") or p.startswith("bench/"),
        "nondeterministic RNG in measured code (use the seeded cclbt::Rng)",
    ),
    (
        "R4",
        INTRINSIC_HEADER_RE,
        lambda p: not p.startswith("src/pmsim/") and p != SIMD_HOME,
        "x86 intrinsic header outside src/pmsim/ and src/common/simd.h",
    ),
    (
        "R5",
        SIMD_INTRINSIC_RE,
        lambda p: not p.startswith("src/pmsim/") and p != SIMD_HOME,
        "raw SIMD intrinsic outside src/common/simd.h "
        "(add a dispatched primitive to cclbt::simd instead)",
    ),
    (
        "R6",
        WALLCLOCK_RE,
        lambda p: p.startswith("src/metrics/") and p != METRICS_CLOCK_HOME,
        "wall-clock read in metric recording outside the sanctioned shim "
        "src/metrics/clock.h (use metrics::WallNowNs)",
    ),
    (
        "R7",
        RAW_LOCK_RE,
        lambda p: p != LOCK_HOME,
        "raw lock primitive outside src/common/lock.h (use the annotated "
        "sync:: wrappers so thread-safety analysis and lockcheck see every "
        "acquire)",
    ),
]

COMMENT_RE = re.compile(r"^\s*(//|\*)")


def lint_tree(root):
    """Returns a list of (relpath, lineno, rule, message) violations."""
    violations = []
    for scan_dir in SCAN_DIRS:
        top = os.path.join(root, scan_dir)
        for dirpath, _, filenames in os.walk(top):
            for name in sorted(filenames):
                if not name.endswith(CXX_EXTS):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, encoding="utf-8", errors="replace") as f:
                    for lineno, line in enumerate(f, start=1):
                        if COMMENT_RE.match(line):
                            continue
                        if "lint_pm_api: allow" in line:
                            continue
                        for rule, pattern, applies, message in RULES:
                            if applies(rel) and pattern.search(line):
                                violations.append((rel, lineno, rule, message))
    return violations


# Each self-test case seeds one file and names the rule that must fire on it.
SELF_TEST_CASES = [
    ("src/core/bad_clwb.cc", "void f(char* p) { _mm_clwb(p); }\n", "R1"),
    ("bench/bad_asm.cc", 'void f() { __asm__ volatile("sfence"); }\n', "R1"),
    (
        "tests/bad_sleep.cc",
        "#include <thread>\nvoid f() { std::this_thread::sleep_for(std::chrono::seconds(1)); }\n",
        "R2",
    ),
    (
        "src/core/bad_clock.cc",
        "long f() { return std::chrono::steady_clock::now().time_since_epoch().count(); }\n",
        "R2",
    ),
    ("bench/bad_rng.cc", "#include <random>\nstd::mt19937 g;\n", "R3"),
    ("src/core/bad_header.cc", "#include <immintrin.h>\n", "R4"),
    (
        "src/core/bad_simd.cc",
        "int f(const char* p) { return _mm256_extract_epi8(_mm256_loadu_si256((const __m256i*)p), 0); }\n",
        "R5",
    ),
    # Wall-clock read in metric-recording code outside the sanctioned shim.
    (
        "src/metrics/bad_wall.cc",
        "long f() { return std::chrono::steady_clock::now().time_since_epoch().count(); }\n",
        "R6",
    ),
    # The sanctioned clock shim itself: neither R2 nor R6 may fire.
    (
        "src/metrics/clock.h",
        "long f() { return std::chrono::steady_clock::now().time_since_epoch().count(); }\n",
        None,
    ),
    # src/common/simd.h is the sanctioned SIMD home: R4/R5 must NOT fire.
    (
        "src/common/simd.h",
        "#include <immintrin.h>\nunsigned f(const char* p) { return _mm_movemask_epi8(_mm_loadu_si128((const __m128i*)p)); }\n",
        None,
    ),
    # pmsim is exempt from R1/R4: must NOT fire.
    ("src/pmsim/real_backend.cc", "#include <immintrin.h>\nvoid f(char* p) { _mm_clwb(p); }\n", None),
    # Annotated escape hatch: must NOT fire.
    ("src/core/annotated.cc", "void f() { __asm__(\"\"); }  // lint_pm_api: allow\n", None),
    # Raw std::mutex outside the sanctioned lock home.
    ("src/core/bad_mutex.cc", "#include <mutex>\nstd::mutex m;\n", "R7"),
    ("src/service/bad_rwlock.cc", "#include <shared_mutex>\nstd::shared_mutex m;\n", "R7"),
    ("src/core/bad_pthread.cc", "pthread_mutex_t m;\n", "R7"),
    (
        "src/kvindex/bad_flag_spin.cc",
        "#include <atomic>\nstd::atomic_flag f;\nvoid l() { while (f.test_and_set(std::memory_order_acquire)) {} }\n",
        "R7",
    ),
    # Hand-rolled TTAS: acquire-ordered exchange in a spin loop.
    (
        "src/core/bad_cas_lock.cc",
        "#include <atomic>\nvoid l(std::atomic<bool>& b) { while (b.exchange(true, std::memory_order_acquire)) {} }\n",
        "R7",
    ),
    # src/common/lock.h is the sanctioned lock home: R7 must NOT fire.
    (
        "src/common/lock.h",
        "#include <mutex>\nclass M { std::mutex mu_; };\n",
        None,
    ),
    # One-shot relaxed exchange flag (crash_injector idiom): not a lock.
    (
        "src/pmsim/ok_oneshot.cc",
        "#include <atomic>\nbool f(std::atomic<bool>& b) { return !b.exchange(true, std::memory_order_relaxed); }\n",
        None,
    ),
    # Checker-internal mutex behind the per-line escape: must NOT fire.
    (
        "src/pmsim/ok_checker_mu.cc",
        "#include <mutex>\nusing CheckerMutex = std::mutex;  // lint_pm_api: allow\n",
        None,
    ),
]


def self_test(root):
    with tempfile.TemporaryDirectory(prefix="lint_pm_api_selftest_") as tmp:
        for rel, content, _ in SELF_TEST_CASES:
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        violations = lint_tree(tmp)
        by_file = {}
        for v in violations:
            by_file.setdefault(v[0], set()).add(v[2])
        failures = []
        for rel, _, want_rule in SELF_TEST_CASES:
            got = by_file.get(rel, set())
            # A seeded file may legitimately trip several rules (e.g. _mm_clwb
            # is both a persistence intrinsic and a SIMD intrinsic); the named
            # rule must be among them. None means no rule may fire at all.
            ok = (not got) if want_rule is None else (want_rule in got)
            if not ok:
                failures.append(f"{rel}: expected {want_rule}, linter reported {sorted(got)}")
        if failures:
            print("lint_pm_api self-test FAILED:")
            for f in failures:
                print(f"  {f}")
            return 1
    real = lint_tree(root)
    if real:
        print(f"lint_pm_api self-test FAILED: real tree has {len(real)} violation(s):")
        report(real)
        return 1
    print(f"lint_pm_api self-test OK ({len(SELF_TEST_CASES)} seeded cases, real tree clean)")
    return 0


def report(violations):
    for rel, lineno, rule, message in violations:
        print(f"{rel}:{lineno}: [{rule}] {message}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=os.path.join(os.path.dirname(__file__), ".."))
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    root = os.path.abspath(args.root)
    if args.self_test:
        return self_test(root)
    violations = lint_tree(root)
    if violations:
        report(violations)
        print(f"lint_pm_api: {len(violations)} violation(s)")
        return 1
    print("lint_pm_api: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
