#!/bin/bash
# The repo's CI entry point, runnable locally:
#
#   1. lint: tools/lint_pm_api.py --self-test (repo persistence/determinism
#      rules; the self-test seeds one violation per rule first)
#   2. tier-1: -Werror build + full ctest (the gate every change must pass)
#   3. clang-tidy: static analysis build with .clang-tidy (skipped with a
#      notice when clang-tidy is not installed)
#   3b. thread-safety: clang -Wthread-safety -Werror build of the annotated
#      sync:: lock layer (DESIGN.md §16; skipped with a notice when clang++
#      is not installed — the annotations expand to nothing under gcc)
#   4. simd-off: the full test suite re-run with CCL_SIMD=off so the scalar
#      fallbacks of src/common/simd.h stay exercised and provably give the
#      same query results as the SIMD paths (DESIGN.md §12)
#   5. pmcheck: the full test suite re-run with CCL_PMCHECK=1 so every test
#      workload doubles as a persistency-ordering check (DESIGN.md §11)
#   5b. lockcheck: the full test suite (incl. the crash matrix) re-run with
#      CCL_LOCKCHECK=1 so every test workload doubles as a locking-
#      discipline check (DESIGN.md §16)
#   6. crash: quick crash-injection matrix profile (ctest label "crash")
#   6b. backend-matrix: the full test suite re-run under each non-default
#      persistence-domain backend (CCL_BACKEND=eadr, then =cxl; DESIGN.md
#      §14) so every test workload also runs in the flush-free and
#      page-granular domains
#   6c. service: the sharded KV front-end suite re-run as a named step
#      (ctest -R service) so a socket-pinning, admission-control, or
#      acked-write-durability regression is named explicitly (DESIGN.md §15)
#   7. determinism: staged benches run twice with pmcheck enabled,
#      virtual-metric tails diffed (run_benches.sh --determinism; §10 —
#      diagnostics must not perturb virtual time); includes the
#      bench_backend_matrix sweep across all backends and the open-loop
#      bench_service_tail sweep (virtual tail latencies must be bit-stable)
#   8. metrics-determinism: the metrics registry / epoch-series test binary
#      re-run on its own so a nondeterministic .pmmetrics series is named
#      explicitly in the CI log (step 7 additionally diffs the epoch series
#      emitted by the real benches)
#   9. bench-gate: tools/bench_gate.py --self-test (seeds a fake regression
#      and requires detection), then fresh results staged at the
#      bench/baselines/MANIFEST scale/filter and compared against the
#      checked-in baselines — virtual metrics exact, wall within noise band
#  10. ASan+UBSan on the pmsim + trace + GC-scheduling + pmcheck + lockcheck
#      + simd + dram_btree + media_model + service + crash_matrix + metrics
#      test subset
#  11. TSan on the same subset (gc_scheduling_test's kOsThread tests are the
#      real-concurrency stress of the legacy GC thread; dram_btree_test's
#      descent stress races optimistic readers against writers;
#      service_test's real-thread pinning regimes run instrumented here)
#
# The sanitizer passes cover the code with the trickiest concurrency story —
# the lock-striped XPBuffer, sharded stats, the pmtrace ring/registry, and
# the GC thread lifecycle — without paying for a fully instrumented build of
# every bench binary.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE_FILTER="pmsim|trace|gc_scheduling|pmcheck|lockcheck|simd|dram_btree|media_model|service|crash_matrix|metrics"

echo "=== lint: lint_pm_api.py self-test + tree ==="
python3 tools/lint_pm_api.py --self-test

echo "=== tier-1: configure + build (-Werror) ==="
cmake -B build -S . -DWERROR=ON >/dev/null
cmake --build build -j"$(nproc)"
echo "=== tier-1: ctest ==="
ctest --test-dir build --output-on-failure -j"$(nproc)"

# Static analysis: full tree under clang-tidy (checks in .clang-tidy). A
# separate build dir keeps the analyzed objects away from the tier-1 build.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== clang-tidy: static analysis build ==="
  cmake -B build-tidy -S . -DCLANG_TIDY=ON >/dev/null
  cmake --build build-tidy -j"$(nproc)"
else
  echo "=== clang-tidy: SKIPPED (clang-tidy not installed) ==="
fi

# Thread-safety analysis: the sync:: wrapper layer (src/common/lock.h) carries
# clang CAPABILITY annotations and every guarded field is GUARDED_BY its
# capability (DESIGN.md §16); -Wthread-safety -Werror makes lock discipline a
# build-time invariant. Clang-only — the macros expand to nothing under gcc,
# so the step self-skips when no clang++ is installed.
if command -v clang++ >/dev/null 2>&1; then
  echo "=== thread-safety: clang -Wthread-safety -Werror build ==="
  cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_CXX_FLAGS="-Wthread-safety" -DWERROR=ON >/dev/null
  cmake --build build-tsa -j"$(nproc)"
else
  echo "=== thread-safety: SKIPPED (clang++ not installed) ==="
fi

# Scalar-fallback pass: the same suite with SIMD dispatch forced off. Any
# test that would pass only with the host's vector paths fails here, which
# pins the contract that CCL_SIMD never changes query results.
echo "=== simd-off: ctest with CCL_SIMD=off ==="
CCL_SIMD=off ctest --test-dir build --output-on-failure -j"$(nproc)"

# Persistency sanitizer pass: every test workload re-run with the pmcheck
# shadow checker on. Tests that assert pmcheck-off defaults clear the env
# themselves; pmcheck_test additionally asserts zero diagnostics on a real
# cclbtree workload, so checker regressions surface here.
echo "=== pmcheck: ctest with CCL_PMCHECK=1 ==="
CCL_PMCHECK=1 ctest --test-dir build --output-on-failure -j"$(nproc)"

# Locking sanitizer pass: every test workload re-run with the lockcheck
# shadow checker on — lockset intersection, lock-order cycles, and the
# fence-publish cross-check all live (DESIGN.md §16). Includes the crash
# matrix so lock state teardown across simulated crashes stays covered.
# lockcheck_test additionally asserts zero diagnostics on real cclbtree and
# service workloads, so checker regressions surface here.
echo "=== lockcheck: ctest with CCL_LOCKCHECK=1 (incl. crash matrix) ==="
CCL_LOCKCHECK=1 ctest --test-dir build --output-on-failure -j"$(nproc)"

# Quick crash-matrix profile: reruns just the crash-labelled tests so a
# crash-consistency regression is named explicitly in the CI log (DESIGN.md §9).
echo "=== crash: injection matrix ==="
ctest --test-dir build -L crash --output-on-failure

# Backend matrix: the whole suite re-run under each non-default persistence
# domain. CCL_BACKEND only rebinds devices whose config left backend at
# kAuto, so tests that pin a backend (or assert resolution defaults and
# clear the env themselves) keep their meaning.
echo "=== backend-matrix: ctest with CCL_BACKEND=eadr ==="
CCL_BACKEND=eadr ctest --test-dir build --output-on-failure -j"$(nproc)"
echo "=== backend-matrix: ctest with CCL_BACKEND=cxl ==="
CCL_BACKEND=cxl ctest --test-dir build --output-on-failure -j"$(nproc)"

# Service front-end: socket pinning, partition coverage, admission-control
# shedding, epoch-series determinism, and the crash matrix over an open-loop
# run (no acked-then-lost writes) as an explicitly named step (DESIGN.md §15).
echo "=== service: ctest -R service ==="
ctest --test-dir build -R service --output-on-failure

# Determinism gate: the paper-figure benches must produce bit-identical
# virtual-metric tails across back-to-back runs — including cclbtree rows
# with background GC on (DESIGN.md §10) and the backend-matrix sweep across
# ADR/eADR/CXL (DESIGN.md §14). Small scale: the property being checked is
# exact equality, not the metric values themselves.
echo "=== determinism: fig03/fig10/fig14/backend_matrix/service_tail run twice, tails diffed (pmcheck on) ==="
CCL_PMCHECK=1 CCL_BENCH_SCALE="${CCL_BENCH_SCALE:-60000}" \
  ./run_benches.sh --determinism 'fig03|fig10|fig14|backend_matrix|service_tail'

# Metrics determinism: the registry's own suite (shard-merge conservation,
# bit-identical epoch series for identical RunConfigs including a
# background-GC run, percentile oracle) re-run as a named step.
echo "=== metrics-determinism: ctest -R metrics ==="
ctest --test-dir build -R metrics --output-on-failure

# Bench regression gate: self-test first (a seeded regression must be
# detected), then fresh results staged at the baselines' scale/filter and
# compared — virtual metrics exactly, wall time within the noise band.
echo "=== bench-gate: bench_gate.py self-test + staged vs baselines ==="
python3 tools/bench_gate.py --self-test
GATE_STAGE_DIR="$(mktemp -d)"
trap 'rm -rf "${GATE_STAGE_DIR}"' EXIT
./run_benches.sh --gate-stage "${GATE_STAGE_DIR}"
python3 tools/bench_gate.py --staged "${GATE_STAGE_DIR}"

tools/sanitize.sh asan "${SANITIZE_FILTER}"
tools/sanitize.sh tsan "${SANITIZE_FILTER}"

echo "=== ci: ALL OK ==="
