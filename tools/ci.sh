#!/bin/bash
# The repo's CI entry point, runnable locally:
#
#   1. tier-1: default build + full ctest (the gate every change must pass)
#   2. crash: quick crash-injection matrix profile (ctest label "crash")
#   3. determinism: staged benches run twice, virtual-metric tails diffed
#      (run_benches.sh --determinism; DESIGN.md §10)
#   4. ASan+UBSan on the pmsim + trace + GC-scheduling test subset
#   5. TSan on the same subset (gc_scheduling_test's kOsThread tests are the
#      real-concurrency stress of the legacy GC thread)
#
# The sanitizer passes cover the code with the trickiest concurrency story —
# the lock-striped XPBuffer, sharded stats, the pmtrace ring/registry, and
# the GC thread lifecycle — without paying for a fully instrumented build of
# every bench binary.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE_FILTER="pmsim|trace|gc_scheduling"

echo "=== tier-1: configure + build ==="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
echo "=== tier-1: ctest ==="
ctest --test-dir build --output-on-failure -j"$(nproc)"

# Quick crash-matrix profile: reruns just the crash-labelled tests so a
# crash-consistency regression is named explicitly in the CI log (DESIGN.md §9).
echo "=== crash: injection matrix ==="
ctest --test-dir build -L crash --output-on-failure

# Determinism gate: the paper-figure benches must produce bit-identical
# virtual-metric tails across back-to-back runs — including cclbtree rows
# with background GC on (DESIGN.md §10). Small scale: the property being
# checked is exact equality, not the metric values themselves.
echo "=== determinism: fig03/fig10/fig14 run twice, tails diffed ==="
CCL_BENCH_SCALE="${CCL_BENCH_SCALE:-60000}" \
  ./run_benches.sh --determinism 'fig03|fig10|fig14'

tools/sanitize.sh asan "${SANITIZE_FILTER}"
tools/sanitize.sh tsan "${SANITIZE_FILTER}"

echo "=== ci: ALL OK ==="
