#!/bin/bash
# The repo's CI entry point, runnable locally:
#
#   1. tier-1: default build + full ctest (the gate every change must pass)
#   2. crash: quick crash-injection matrix profile (ctest label "crash")
#   3. ASan+UBSan on the pmsim + trace test subset
#   4. TSan on the pmsim + trace test subset
#
# The sanitizer passes cover the code with the trickiest concurrency story —
# the lock-striped XPBuffer, sharded stats, and the pmtrace ring/registry —
# without paying for a fully instrumented build of every bench binary.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE_FILTER="pmsim|trace"

echo "=== tier-1: configure + build ==="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
echo "=== tier-1: ctest ==="
ctest --test-dir build --output-on-failure -j"$(nproc)"

# Quick crash-matrix profile: reruns just the crash-labelled tests so a
# crash-consistency regression is named explicitly in the CI log (DESIGN.md §9).
echo "=== crash: injection matrix ==="
ctest --test-dir build -L crash --output-on-failure

tools/sanitize.sh asan "${SANITIZE_FILTER}"
tools/sanitize.sh tsan "${SANITIZE_FILTER}"

echo "=== ci: ALL OK ==="
