// pmctl: inspector for .pmtrace dumps produced by the bench driver (set
// CCL_TRACE=<prefix> and run any bench; one dump per measured run). Modeled
// on ipmctl's show/performance verbs, but reading the simulator's richer
// attribution data instead of DIMM SMART counters.
//
//   pmctl stats   <dump>            amplification + per-tag/per-component table
//   pmctl watch   <dump>            stats timeline as per-interval rates
//   pmctl heatmap <dump> [--cols N] ASCII XPLine write-count heatmap
//   pmctl trace   <dump> [-o f]     Chrome trace-event JSON (Perfetto-loadable)
//   pmctl check   <dump>            pmcheck persistency report; exit 3 on violations
//   pmctl locks   <dump>            lockcheck locking report; exit 3 on violations
//
// It also reads the .pmmetrics JSON-lines time series written when
// CCL_METRICS=<prefix> is set (src/bench/metrics_dump.h):
//   pmctl top     <dump.pmmetrics>          one-shot terminal dashboard (no
//                                           polling by design — wrap with
//                                           `watch -n1` for a live view)
//   pmctl series  <dump.pmmetrics> [--json] per-epoch time series as CSV
//                                           (default) or raw JSON lines;
//                                           exits 3 if any epoch's
//                                           per-component bytes fail to sum
//                                           to that epoch's media_write_bytes
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/metrics/pmmetrics.h"
#include "src/trace/component.h"
#include "src/trace/event.h"
#include "src/trace/exporters.h"
#include "src/trace/trace.h"

namespace cclbt::pmctl {
namespace {

struct TagRow {
  std::string name;
  uint64_t writes = 0;
};

struct CompRow {
  std::string name;
  uint64_t media_bytes = 0;
  uint64_t committed_lines = 0;
};

struct Sample {
  uint64_t t_ns = 0;
  uint64_t ops = 0;
  uint64_t media_write_bytes = 0;
  uint64_t xpbuffer_write_bytes = 0;
  uint64_t line_flushes = 0;
  uint64_t fences = 0;
};

// One recent-event line attached to a pmcheck diagnostic.
struct CheckEvent {
  std::string kind;
  std::string comp;
  int worker = 0;
  uint64_t detail = 0;
  uint64_t fence_epoch = 0;
};

struct CheckDiag {
  std::string cls;
  uint64_t line = 0;
  uint64_t xpline = 0;
  int dimm = 0;
  std::string comp;
  int worker = 0;
  uint64_t fence_epoch = 0;
  std::string detail;
  // Informational diagnostic (backend-downgraded severity; pmcheckinfo
  // keyword in v2 dumps). Never counts toward the exit status.
  bool info = false;
  std::vector<CheckEvent> recent;
};

struct CheckClassRow {
  std::string name;
  uint64_t count = 0;
  uint64_t suppressed = 0;
  uint64_t info = 0;  // v2 dumps only; 0 for v1
};

// One recent-event line attached to a lockcheck diagnostic.
struct LockEvent {
  std::string kind;
  std::string comp;
  int worker = 0;
  std::string lock;  // "-" when not lock-related
  uint64_t detail = 0;
};

struct LockDiag {
  std::string cls;
  uint64_t line = 0;  // line-aligned pool offset; 0 for lock_cycle
  std::string comp;
  int worker = 0;
  std::string lock;   // primary lock name ("none" when not lock-related)
  std::string lock2;  // cycle-edge target for lock_cycle, else "none"
  std::string detail;
  // Informational diagnostic (fence_publish_gap without pmcheck
  // confirmation). Never counts toward the exit status.
  bool info = false;
  std::vector<LockEvent> recent;
};

struct Dump {
  int version = 0;
  std::string label;
  std::map<std::string, std::string> config;
  std::vector<std::pair<std::string, uint64_t>> stats;  // declaration order
  std::vector<TagRow> tags;
  std::vector<CompRow> comps;
  std::vector<Sample> samples;
  uint64_t heat_units = 0;
  uint64_t heat_per_bin = 0;
  std::vector<trace::HeatBin> heat_bins;  // sparse, as dumped
  std::vector<trace::NamedRing> rings;
  // pmcheck section (present iff the run had CCL_PMCHECK=1 / RunConfig on).
  int pmcheck_version = 0;
  std::vector<std::pair<std::string, uint64_t>> pmcheck_stats;
  std::vector<CheckClassRow> pmcheck_classes;
  std::vector<CheckDiag> pmcheck_diags;
  // lockcheck section (present iff the run had CCL_LOCKCHECK=1 / RunConfig on).
  int lockcheck_version = 0;
  std::vector<std::pair<std::string, uint64_t>> lockcheck_stats;
  std::vector<CheckClassRow> lockcheck_classes;
  std::vector<LockDiag> lockcheck_diags;
};

uint64_t Stat(const Dump& d, const std::string& name) {
  for (const auto& [k, v] : d.stats) {
    if (k == name) {
      return v;
    }
  }
  return 0;
}

bool ParseDump(const std::string& path, Dump& d) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "pmctl: cannot open " << path << "\n";
    return false;
  }
  std::string line;
  trace::NamedRing* ring = nullptr;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    lineno++;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ss(line);
    std::string kw;
    ss >> kw;
    if (kw == "pmtrace") {
      ss >> d.version;
    } else if (kw == "label") {
      ss >> d.label;
    } else if (kw == "config") {
      std::string key, value;
      ss >> key >> value;
      d.config[key] = value;
    } else if (kw == "stat") {
      std::string name;
      uint64_t value = 0;
      ss >> name >> value;
      d.stats.emplace_back(name, value);
    } else if (kw == "stattag") {
      TagRow row;
      ss >> row.name >> row.writes;
      d.tags.push_back(row);
    } else if (kw == "statcomp") {
      CompRow row;
      ss >> row.name >> row.media_bytes >> row.committed_lines;
      d.comps.push_back(row);
    } else if (kw == "sample") {
      Sample s;
      ss >> s.t_ns >> s.ops >> s.media_write_bytes >> s.xpbuffer_write_bytes >>
          s.line_flushes >> s.fences;
      d.samples.push_back(s);
    } else if (kw == "heat") {
      ss >> d.heat_units >> d.heat_per_bin;
    } else if (kw == "heatbin") {
      trace::HeatBin bin;
      ss >> bin.first_unit >> bin.units >> bin.writes >> bin.hottest_unit >>
          bin.hottest_writes;
      d.heat_bins.push_back(bin);
    } else if (kw == "ring") {
      trace::NamedRing r;
      uint64_t retained = 0;
      ss >> r.worker_id >> r.socket >> r.emitted >> retained;
      r.events.reserve(retained);
      d.rings.push_back(std::move(r));
      ring = &d.rings.back();
    } else if (kw == "event") {
      int worker = 0;
      uint64_t t_ns = 0, arg = 0;
      unsigned type = 0, comp = 0, aux = 0, dimm = 0;
      ss >> worker >> t_ns >> type >> comp >> arg >> aux >> dimm;
      if (ring == nullptr || ring->worker_id != worker) {
        std::cerr << "pmctl: " << path << ":" << lineno << ": event outside its ring\n";
        return false;
      }
      trace::TraceEvent ev;
      ev.t_ns = t_ns;
      ev.arg = arg;
      ev.aux = aux;
      ev.type = static_cast<uint8_t>(type);
      ev.comp = static_cast<uint8_t>(comp);
      ev.dimm = static_cast<uint16_t>(dimm);
      ring->events.push_back(ev);
    } else if (kw == "pmcheck") {
      ss >> d.pmcheck_version;
    } else if (kw == "pmcheckstat") {
      std::string name;
      uint64_t value = 0;
      ss >> name >> value;
      d.pmcheck_stats.emplace_back(name, value);
    } else if (kw == "pmcheckclass") {
      CheckClassRow row;
      ss >> row.name >> row.count >> row.suppressed;
      uint64_t info = 0;
      if (ss >> info) {
        row.info = info;
      } else {
        ss.clear();  // v1 dumps have no info column
      }
      d.pmcheck_classes.push_back(row);
    } else if (kw == "pmcheckdiag" || kw == "pmcheckinfo") {
      CheckDiag diag;
      ss >> diag.cls >> diag.line >> diag.xpline >> diag.dimm >> diag.comp >> diag.worker >>
          diag.fence_epoch >> diag.detail;
      diag.info = kw == "pmcheckinfo";
      d.pmcheck_diags.push_back(std::move(diag));
    } else if (kw == "pmcheckev") {
      CheckEvent ev;
      ss >> ev.kind >> ev.comp >> ev.worker >> ev.detail >> ev.fence_epoch;
      if (d.pmcheck_diags.empty()) {
        std::cerr << "pmctl: " << path << ":" << lineno << ": pmcheckev outside a diagnostic\n";
        return false;
      }
      d.pmcheck_diags.back().recent.push_back(std::move(ev));
    } else if (kw == "lockcheck") {
      ss >> d.lockcheck_version;
    } else if (kw == "lockcheckstat") {
      std::string name;
      uint64_t value = 0;
      ss >> name >> value;
      d.lockcheck_stats.emplace_back(name, value);
    } else if (kw == "lockcheckclass") {
      CheckClassRow row;
      ss >> row.name >> row.count >> row.suppressed >> row.info;
      d.lockcheck_classes.push_back(row);
    } else if (kw == "lockcheckdiag" || kw == "lockcheckinfo") {
      LockDiag diag;
      ss >> diag.cls >> diag.line >> diag.comp >> diag.worker >> diag.lock >> diag.lock2 >>
          diag.detail;
      diag.info = kw == "lockcheckinfo";
      d.lockcheck_diags.push_back(std::move(diag));
    } else if (kw == "lockcheckev") {
      LockEvent ev;
      ss >> ev.kind >> ev.comp >> ev.worker >> ev.lock >> ev.detail;
      if (d.lockcheck_diags.empty()) {
        std::cerr << "pmctl: " << path << ":" << lineno
                  << ": lockcheckev outside a diagnostic\n";
        return false;
      }
      d.lockcheck_diags.back().recent.push_back(std::move(ev));
    } else {
      // Unknown keyword: skip (forward compatibility with newer dumps).
      continue;
    }
    if (!ss && kw != "pmtrace") {
      std::cerr << "pmctl: " << path << ":" << lineno << ": malformed '" << kw
                << "' line\n";
      return false;
    }
  }
  if (d.version != 1) {
    std::cerr << "pmctl: " << path << ": unsupported pmtrace version " << d.version
              << "\n";
    return false;
  }
  return true;
}

std::string HumanBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= 1ULL << 30) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", static_cast<double>(bytes) / (1ULL << 30));
  } else if (bytes >= 1ULL << 20) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", static_cast<double>(bytes) / (1ULL << 20));
  } else if (bytes >= 1ULL << 10) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", static_cast<double>(bytes) / (1ULL << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

int CmdStats(const Dump& d) {
  uint64_t user = Stat(d, "user_bytes");
  uint64_t xpb = Stat(d, "xpbuffer_write_bytes");
  uint64_t media = Stat(d, "media_write_bytes");
  std::printf("run %s (elapsed %s virtual ms)\n", d.label.c_str(),
              d.config.count("elapsed_virtual_ms") ? d.config.at("elapsed_virtual_ms").c_str()
                                                   : "?");
  std::printf("\n-- counters --\n");
  for (const auto& [name, value] : d.stats) {
    std::printf("  %-28s %20llu\n", name.c_str(), static_cast<unsigned long long>(value));
  }
  std::printf("\n-- amplification --\n");
  if (user != 0) {
    std::printf("  CLI (xpbuffer/user)  %8.3f\n",
                static_cast<double>(xpb) / static_cast<double>(user));
    std::printf("  XBI (media/user)     %8.3f\n",
                static_cast<double>(media) / static_cast<double>(user));
  } else {
    std::printf("  (no user bytes recorded; read-only run?)\n");
  }
  if (!d.tags.empty()) {
    std::printf("\n-- media writes by stream tag (address range) --\n");
    uint64_t total = 0;
    for (const TagRow& row : d.tags) {
      total += row.writes;
    }
    for (const TagRow& row : d.tags) {
      double pct = total == 0 ? 0.0
                              : 100.0 * static_cast<double>(row.writes) /
                                    static_cast<double>(total);
      std::printf("  %-12s %14llu  %6.2f%%\n", row.name.c_str(),
                  static_cast<unsigned long long>(row.writes), pct);
    }
  }
  if (!d.comps.empty()) {
    std::printf("\n-- media write bytes by component (code scope) --\n");
    uint64_t comp_total = 0;
    for (const CompRow& row : d.comps) {
      comp_total += row.media_bytes;
    }
    for (const CompRow& row : d.comps) {
      if (row.media_bytes == 0 && row.committed_lines == 0) {
        continue;
      }
      double pct = media == 0 ? 0.0
                              : 100.0 * static_cast<double>(row.media_bytes) /
                                    static_cast<double>(media);
      std::printf("  %-12s %14llu  %6.2f%%   (%s, %llu committed lines)\n",
                  row.name.c_str(), static_cast<unsigned long long>(row.media_bytes), pct,
                  HumanBytes(row.media_bytes).c_str(),
                  static_cast<unsigned long long>(row.committed_lines));
    }
    std::printf("  %-12s %14llu  %s\n", "total", static_cast<unsigned long long>(comp_total),
                comp_total == media ? "(= media_write_bytes)" : "(!= media_write_bytes)");
    if (comp_total != media) {
      std::fprintf(stderr,
                   "pmctl: WARNING: component attribution (%llu) does not sum to "
                   "media_write_bytes (%llu)\n",
                   static_cast<unsigned long long>(comp_total),
                   static_cast<unsigned long long>(media));
      return 2;
    }
  }
  return 0;
}

int CmdWatch(const Dump& d) {
  if (d.samples.empty()) {
    std::printf("(no timeline samples in dump; sequential-scheduler runs only)\n");
    return 0;
  }
  std::printf("%10s %12s %10s %12s %12s %10s %10s\n", "t_ms", "ops", "Mops", "media_MB/s",
              "xpbuf_MB/s", "flush/op", "fence/op");
  Sample prev;
  for (const Sample& s : d.samples) {
    uint64_t dt = s.t_ns - prev.t_ns;
    uint64_t dops = s.ops - prev.ops;
    double dt_s = static_cast<double>(dt) / 1e9;
    double mops = dt == 0 ? 0.0 : static_cast<double>(dops) / 1e6 / dt_s;
    double media_mbs =
        dt == 0 ? 0.0
                : static_cast<double>(s.media_write_bytes - prev.media_write_bytes) / 1e6 / dt_s;
    double xpb_mbs =
        dt == 0 ? 0.0
                : static_cast<double>(s.xpbuffer_write_bytes - prev.xpbuffer_write_bytes) /
                      1e6 / dt_s;
    double fpo = dops == 0 ? 0.0
                           : static_cast<double>(s.line_flushes - prev.line_flushes) /
                                 static_cast<double>(dops);
    double fepo = dops == 0 ? 0.0
                            : static_cast<double>(s.fences - prev.fences) /
                                  static_cast<double>(dops);
    std::printf("%10.2f %12llu %10.3f %12.1f %12.1f %10.2f %10.2f\n",
                static_cast<double>(s.t_ns) / 1e6, static_cast<unsigned long long>(s.ops),
                mops, media_mbs, xpb_mbs, fpo, fepo);
    prev = s;
  }
  return 0;
}

int CmdHeatmap(const Dump& d, int columns) {
  if (d.heat_units == 0 || d.heat_per_bin == 0) {
    std::printf("(no heatmap in dump; run under CCL_TRACE with a driver that enables "
                "record_unit_heatmap)\n");
    return 0;
  }
  // Reconstitute the dense bin vector (the dump omits empty bins).
  size_t num_bins = static_cast<size_t>((d.heat_units + d.heat_per_bin - 1) / d.heat_per_bin);
  std::vector<trace::HeatBin> bins(num_bins);
  for (size_t i = 0; i < num_bins; i++) {
    bins[i].first_unit = static_cast<uint64_t>(i) * d.heat_per_bin;
    bins[i].units = std::min<uint64_t>(d.heat_per_bin, d.heat_units - bins[i].first_unit);
  }
  uint64_t total_writes = 0;
  trace::HeatBin hottest;
  for (const trace::HeatBin& bin : d.heat_bins) {
    size_t idx = static_cast<size_t>(bin.first_unit / d.heat_per_bin);
    if (idx >= num_bins) {
      continue;
    }
    bins[idx].writes = bin.writes;
    bins[idx].hottest_unit = bin.hottest_unit;
    bins[idx].hottest_writes = bin.hottest_writes;
    total_writes += bin.writes;
    if (bin.hottest_writes > hottest.hottest_writes) {
      hottest = bin;
    }
  }
  std::printf("run %s: %llu media writes over %llu XPLines (%llu XPLines/bin)\n",
              d.label.c_str(), static_cast<unsigned long long>(total_writes),
              static_cast<unsigned long long>(d.heat_units),
              static_cast<unsigned long long>(d.heat_per_bin));
  trace::RenderHeatmap(std::cout, bins, columns);
  if (hottest.hottest_writes > 0) {
    std::printf("hottest XPLine: unit %llu with %llu writes\n",
                static_cast<unsigned long long>(hottest.hottest_unit),
                static_cast<unsigned long long>(hottest.hottest_writes));
  }
  return 0;
}

int CmdTrace(const Dump& d, const std::string& out_path) {
  if (d.rings.empty()) {
    std::cerr << "pmctl: no trace rings in dump\n";
    return 1;
  }
  uint64_t total = 0, retained = 0;
  for (const trace::NamedRing& ring : d.rings) {
    total += ring.emitted;
    retained += ring.events.size();
  }
  std::cerr << "pmctl: " << d.rings.size() << " worker rings, " << retained << "/" << total
            << " events retained\n";
  if (out_path.empty() || out_path == "-") {
    trace::ExportChromeTraceJson(std::cout, d.rings, d.label);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "pmctl: cannot write " << out_path << "\n";
    return 1;
  }
  trace::ExportChromeTraceJson(out, d.rings, d.label);
  out.flush();
  if (!out) {
    std::cerr << "pmctl: write to " << out_path << " failed\n";
    return 1;
  }
  std::cerr << "pmctl: wrote " << out_path << " (load in Perfetto / chrome://tracing)\n";
  return 0;
}

// Persistency report from the dump's pmcheck section (DESIGN.md §11).
// Exit status: 0 clean, 2 checker was not enabled for the run, 3 violations.
int CmdCheck(const Dump& d) {
  if (d.pmcheck_version == 0) {
    std::printf("run %s: pmcheck was not enabled for this run\n", d.label.c_str());
    std::printf("(rerun with CCL_PMCHECK=1 and CCL_TRACE=<prefix> to produce a checked dump)\n");
    return 2;
  }
  uint64_t total = 0;
  uint64_t suppressed = 0;
  uint64_t info = 0;
  for (const CheckClassRow& row : d.pmcheck_classes) {
    total += row.count;
    suppressed += row.suppressed;
    info += row.info;
  }
  // Informational counts (backend-downgraded classes) are reported but never
  // gate the exit status.
  std::printf("run %s: pmcheck %s — %llu violation(s), %llu informational, %llu suppressed\n",
              d.label.c_str(), total == 0 ? "CLEAN" : "VIOLATIONS",
              static_cast<unsigned long long>(total), static_cast<unsigned long long>(info),
              static_cast<unsigned long long>(suppressed));
  auto backend = d.config.find("backend");
  if (backend != d.config.end()) {
    std::printf("  %-22s %14s\n", "backend", backend->second.c_str());
  }
  for (const auto& [name, value] : d.pmcheck_stats) {
    std::printf("  %-22s %14llu\n", name.c_str(), static_cast<unsigned long long>(value));
    if (name == "diagnostics_truncated" && value != 0) {
      std::printf("  WARNING: %llu diagnostic(s) beyond the retention cap were counted "
                  "but not materialized — the list below is incomplete\n",
                  static_cast<unsigned long long>(value));
    }
  }
  std::printf("\n-- violations by class --\n");
  for (const CheckClassRow& row : d.pmcheck_classes) {
    std::printf("  %-22s %14llu   (%llu info, %llu suppressed)\n", row.name.c_str(),
                static_cast<unsigned long long>(row.count),
                static_cast<unsigned long long>(row.info),
                static_cast<unsigned long long>(row.suppressed));
  }
  if (!d.pmcheck_diags.empty()) {
    std::printf("\n-- diagnostics --\n");
    size_t i = 0;
    for (const CheckDiag& diag : d.pmcheck_diags) {
      std::printf("[%zu] %s%s: %s\n", i++, diag.cls.c_str(), diag.info ? " (info)" : "",
                  diag.detail.c_str());
      std::printf("    line 0x%llx (XPLine %llu, DIMM %d), component %s, worker %d, "
                  "fence epoch %llu\n",
                  static_cast<unsigned long long>(diag.line),
                  static_cast<unsigned long long>(diag.xpline), diag.dimm, diag.comp.c_str(),
                  diag.worker, static_cast<unsigned long long>(diag.fence_epoch));
      for (const CheckEvent& ev : diag.recent) {
        std::printf("      ... %-6s comp=%-10s worker=%-3d detail=0x%llx epoch=%llu\n",
                    ev.kind.c_str(), ev.comp.c_str(), ev.worker,
                    static_cast<unsigned long long>(ev.detail),
                    static_cast<unsigned long long>(ev.fence_epoch));
      }
    }
  }
  return total == 0 ? 0 : 3;
}

// Locking report from the dump's lockcheck section (DESIGN.md §16).
// Exit status: 0 clean, 2 checker was not enabled for the run, 3 violations.
int CmdLocks(const Dump& d) {
  if (d.lockcheck_version == 0) {
    std::printf("run %s: lockcheck was not enabled for this run\n", d.label.c_str());
    std::printf("(rerun with CCL_LOCKCHECK=1 and CCL_TRACE=<prefix> to produce a checked "
                "dump)\n");
    return 2;
  }
  uint64_t total = 0;
  uint64_t suppressed = 0;
  uint64_t info = 0;
  for (const CheckClassRow& row : d.lockcheck_classes) {
    total += row.count;
    suppressed += row.suppressed;
    info += row.info;
  }
  // Informational counts (fence_publish_gap without pmcheck confirmation)
  // are reported but never gate the exit status.
  std::printf("run %s: lockcheck %s — %llu violation(s), %llu informational, %llu "
              "suppressed\n",
              d.label.c_str(), total == 0 ? "CLEAN" : "VIOLATIONS",
              static_cast<unsigned long long>(total), static_cast<unsigned long long>(info),
              static_cast<unsigned long long>(suppressed));
  for (const auto& [name, value] : d.lockcheck_stats) {
    std::printf("  %-22s %14llu\n", name.c_str(), static_cast<unsigned long long>(value));
    if (name == "diagnostics_truncated" && value != 0) {
      std::printf("  WARNING: %llu diagnostic(s) beyond the retention cap were counted "
                  "but not materialized — the list below is incomplete\n",
                  static_cast<unsigned long long>(value));
    }
  }
  std::printf("\n-- violations by class --\n");
  for (const CheckClassRow& row : d.lockcheck_classes) {
    std::printf("  %-22s %14llu   (%llu info, %llu suppressed)\n", row.name.c_str(),
                static_cast<unsigned long long>(row.count),
                static_cast<unsigned long long>(row.info),
                static_cast<unsigned long long>(row.suppressed));
  }
  if (!d.lockcheck_diags.empty()) {
    std::printf("\n-- diagnostics --\n");
    size_t i = 0;
    for (const LockDiag& diag : d.lockcheck_diags) {
      std::printf("[%zu] %s%s: %s\n", i++, diag.cls.c_str(), diag.info ? " (info)" : "",
                  diag.detail.c_str());
      if (diag.cls == "lock_cycle") {
        std::printf("    order edge %s -> %s, component %s, worker %d\n", diag.lock.c_str(),
                    diag.lock2.c_str(), diag.comp.c_str(), diag.worker);
      } else {
        std::printf("    line 0x%llx, lock %s, component %s, worker %d\n",
                    static_cast<unsigned long long>(diag.line), diag.lock.c_str(),
                    diag.comp.c_str(), diag.worker);
      }
      for (const LockEvent& ev : diag.recent) {
        std::printf("      ... %-8s comp=%-10s worker=%-3d lock=%-18s detail=0x%llx\n",
                    ev.kind.c_str(), ev.comp.c_str(), ev.worker, ev.lock.c_str(),
                    static_cast<unsigned long long>(ev.detail));
      }
    }
  }
  return total == 0 ? 0 : 3;
}

// --- .pmmetrics commands ----------------------------------------------------

// Verifies the per-epoch extension of the PR 2 sum-to-total invariant: in
// every epoch, the windowed per-component media bytes must sum exactly to
// the windowed media_write_bytes. Returns the number of violating epochs
// (reported to stderr).
size_t CheckEpochComponentSums(const metrics::PmMetricsFile& f) {
  size_t bad = 0;
  for (const metrics::EpochRecord& e : f.epochs) {
    uint64_t sum = e.ComponentBytesTotal();
    if (sum != e.media_write_bytes) {
      std::fprintf(stderr,
                   "pmctl: epoch %llu: component bytes (%llu) != windowed "
                   "media_write_bytes (%llu)\n",
                   static_cast<unsigned long long>(e.index),
                   static_cast<unsigned long long>(sum),
                   static_cast<unsigned long long>(e.media_write_bytes));
      bad++;
    }
  }
  return bad;
}

std::string Spark(const std::vector<double>& values) {
  static const char kRamp[] = " .:-=+*#%@";
  double max_v = 0;
  for (double v : values) {
    max_v = std::max(max_v, v);
  }
  std::string out;
  for (double v : values) {
    int level = max_v == 0 ? 0 : static_cast<int>(v / max_v * 9.0);
    out += kRamp[std::min(9, std::max(0, level))];
  }
  return out;
}

int CmdTop(const metrics::PmMetricsFile& f) {
  std::printf("run %-20s  threads %llu  ops %llu  epoch %.3f virtual ms\n",
              f.header.label.c_str(), static_cast<unsigned long long>(f.header.threads),
              static_cast<unsigned long long>(f.header.ops),
              static_cast<double>(f.header.epoch_ns) / 1e6);
  if (f.has_summary) {
    std::printf("elapsed %.3f virtual ms\n",
                static_cast<double>(f.summary.elapsed_virtual_ns) / 1e6);
  }

  if (!f.epochs.empty()) {
    // Run-wide windowed aggregates + the most recent epoch's instantaneous view.
    std::vector<double> xbi_series;
    std::vector<double> mops_series;
    uint64_t prev_t = 0;
    for (const metrics::EpochRecord& e : f.epochs) {
      xbi_series.push_back(e.WindowXbi());
      uint64_t dt = e.t_ns - prev_t;
      mops_series.push_back(dt == 0 ? 0.0
                                    : static_cast<double>(e.TotalOps()) * 1e3 /
                                          static_cast<double>(dt));
      prev_t = e.t_ns;
    }
    const metrics::EpochRecord& last = f.epochs.back();
    std::printf("\n-- windowed series (%zu epochs) --\n", f.epochs.size());
    std::printf("  Mops |%s|\n", Spark(mops_series).c_str());
    std::printf("  XBI  |%s|\n", Spark(xbi_series).c_str());
    std::printf("\n-- last epoch (t=%.3f virtual ms) --\n",
                static_cast<double>(last.t_ns) / 1e6);
    std::printf("  Mops %8.3f   CLI %7.3f   XBI %7.3f   flush/op %6.2f   fence/op %6.2f\n",
                mops_series.back(), last.WindowCli(), last.WindowXbi(),
                last.TotalOps() == 0 ? 0.0
                                     : static_cast<double>(last.line_flushes) /
                                           static_cast<double>(last.TotalOps()),
                last.TotalOps() == 0 ? 0.0
                                     : static_cast<double>(last.fences) /
                                           static_cast<double>(last.TotalOps()));
    std::printf("  xpbuffer: resident %llu lines, insertions %llu, evictions %llu\n",
                static_cast<unsigned long long>(last.xpbuf_resident),
                static_cast<unsigned long long>(last.xpbuf_insertions),
                static_cast<unsigned long long>(last.xpbuf_evictions));
    if (!last.comp_bytes.empty()) {
      std::printf("  media bytes by component:");
      for (size_t c = 0; c < last.comp_bytes.size(); c++) {
        if (last.comp_bytes[c] == 0) {
          continue;
        }
        std::printf(" %s=%llu",
                    c < f.header.components.size() ? f.header.components[c].c_str() : "?",
                    static_cast<unsigned long long>(last.comp_bytes[c]));
      }
      std::printf("\n");
    }
    if (!last.gauges.empty()) {
      std::printf("  index gauges:");
      for (const auto& [name, value] : last.gauges) {
        std::printf(" %s=%llu", name.c_str(), static_cast<unsigned long long>(value));
      }
      std::printf("\n");
    }
  } else {
    std::printf("\n(no epoch records; os_parallel runs collect totals only)\n");
  }

  if (f.has_summary) {
    std::printf("\n-- per-op latency (virtual ns | wall ns) --\n");
    std::printf("  %-8s %12s %10s %10s %10s | %10s %10s %10s\n", "op", "count", "p50", "p99",
                "p999", "p50", "p99", "p999");
    for (size_t k = 0; k < f.summary.virt.size(); k++) {
      const metrics::OpLatencySummary& v = f.summary.virt[k];
      if (v.count == 0) {
        continue;
      }
      const metrics::OpLatencySummary w =
          k < f.summary.wall.size() ? f.summary.wall[k] : metrics::OpLatencySummary{};
      std::printf("  %-8s %12llu %10llu %10llu %10llu | %10llu %10llu %10llu\n",
                  k < f.header.op_kinds.size() ? f.header.op_kinds[k].c_str() : "?",
                  static_cast<unsigned long long>(v.count),
                  static_cast<unsigned long long>(v.p50_ns),
                  static_cast<unsigned long long>(v.p99_ns),
                  static_cast<unsigned long long>(v.p999_ns),
                  static_cast<unsigned long long>(w.p50_ns),
                  static_cast<unsigned long long>(w.p99_ns),
                  static_cast<unsigned long long>(w.p999_ns));
    }
  }

  size_t bad = CheckEpochComponentSums(f);
  if (bad != 0) {
    std::printf("\nWARNING: %zu epoch(s) violate the component-sum invariant\n", bad);
    return 3;
  }
  return 0;
}

int CmdSeries(const metrics::PmMetricsFile& f, bool json) {
  if (json) {
    // Raw record lines (the deterministic payload), re-serialized.
    std::fputs(metrics::SerializeHeader(f.header).c_str(), stdout);
    std::fputs(metrics::SerializeEpochSeries(f.epochs).c_str(), stdout);
  } else {
    // CSV: one row per epoch, stable column order derived from the header
    // name tables (gauge columns from the first epoch's gauge list).
    std::string head = "epoch,t_ns";
    for (const std::string& k : f.header.op_kinds) {
      head += ",ops_" + k + ",p50_ns_" + k + ",p99_ns_" + k + ",p999_ns_" + k;
    }
    head +=
        ",user_bytes,xpbuffer_write_bytes,media_write_bytes,media_read_bytes,"
        "line_flushes,fences,window_cli,window_xbi";
    for (const std::string& c : f.header.components) {
      head += ",mwB_" + c;
    }
    head += ",xpbuf_resident,xpbuf_insertions,xpbuf_evictions";
    for (const std::string& c : f.header.counters) {
      head += "," + c;
    }
    if (!f.epochs.empty()) {
      for (const auto& [name, value] : f.epochs.front().gauges) {
        (void)value;
        head += ",gauge_" + name;
      }
    }
    std::printf("%s\n", head.c_str());
    auto cell = [](uint64_t v) { return std::to_string(v); };
    for (const metrics::EpochRecord& e : f.epochs) {
      std::string row = cell(e.index) + "," + cell(e.t_ns);
      for (size_t k = 0; k < f.header.op_kinds.size(); k++) {
        row += "," + cell(k < e.ops.size() ? e.ops[k] : 0);
        row += "," + cell(k < e.p50_ns.size() ? e.p50_ns[k] : 0);
        row += "," + cell(k < e.p99_ns.size() ? e.p99_ns[k] : 0);
        row += "," + cell(k < e.p999_ns.size() ? e.p999_ns[k] : 0);
      }
      row += "," + cell(e.user_bytes) + "," + cell(e.xpbuffer_write_bytes) + "," +
             cell(e.media_write_bytes) + "," + cell(e.media_read_bytes) + "," +
             cell(e.line_flushes) + "," + cell(e.fences);
      char amp[64];
      std::snprintf(amp, sizeof(amp), ",%.6f,%.6f", e.WindowCli(), e.WindowXbi());
      row += amp;
      for (size_t c = 0; c < f.header.components.size(); c++) {
        row += "," + cell(c < e.comp_bytes.size() ? e.comp_bytes[c] : 0);
      }
      row += "," + cell(e.xpbuf_resident) + "," + cell(e.xpbuf_insertions) + "," +
             cell(e.xpbuf_evictions);
      for (size_t c = 0; c < f.header.counters.size(); c++) {
        row += "," + cell(c < e.counters.size() ? e.counters[c] : 0);
      }
      for (const auto& [name, value] : e.gauges) {
        (void)name;
        row += "," + cell(value);
      }
      std::printf("%s\n", row.c_str());
    }
  }
  // The CI contract: a series export fails loudly when any epoch's
  // per-component bytes do not sum to the windowed media-write delta.
  return CheckEpochComponentSums(f) == 0 ? 0 : 3;
}

int Usage() {
  std::cerr
      << "usage: pmctl <stats|watch|heatmap|trace|check|locks|top|series> <dump> [options]\n"
         "  stats   <dump.pmtrace>              counters, amplification, per-component breakdown\n"
         "  watch   <dump.pmtrace>              stats timeline as per-interval rates\n"
         "  heatmap <dump.pmtrace> [--cols N]   ASCII XPLine write heatmap (default 64 cols)\n"
         "  trace   <dump.pmtrace> [-o f.json]  Chrome trace JSON to f.json (default stdout)\n"
         "  check   <dump.pmtrace>              pmcheck persistency report; exit 3 on violations\n"
         "  locks   <dump.pmtrace>              lockcheck locking report; exit 3 on violations\n"
         "  top     <dump.pmmetrics>            terminal dashboard (one-shot; `watch -n1` for live)\n"
         "  series  <dump.pmmetrics> [--json]   per-epoch series as CSV (default) or JSON lines;\n"
         "                                      exit 3 on component-sum violation\n"
         "Produce .pmtrace dumps by running any bench with CCL_TRACE=<path-prefix>\n"
         "(add CCL_PMCHECK=1 / CCL_LOCKCHECK=1 for dumps `pmctl check` / `pmctl locks`\n"
         "can report on), and\n"
         ".pmmetrics dumps with CCL_METRICS=<path-prefix>.\n";
  return 64;
}

int Main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  std::string cmd = argv[1];
  std::string path = argv[2];
  if (cmd == "top" || cmd == "series") {
    metrics::PmMetricsFile f;
    std::string error;
    if (!metrics::ReadPmMetricsFile(path, &f, &error)) {
      std::fprintf(stderr, "pmctl: %s\n", error.c_str());
      return 1;
    }
    if (cmd == "top") {
      return CmdTop(f);
    }
    bool json = false;
    for (int i = 3; i < argc; i++) {
      if (std::strcmp(argv[i], "--json") == 0) {
        json = true;
      }
    }
    return CmdSeries(f, json);
  }
  Dump d;
  if (!ParseDump(path, d)) {
    return 1;
  }
  if (cmd == "stats") {
    return CmdStats(d);
  }
  if (cmd == "locks") {
    return CmdLocks(d);
  }
  if (cmd == "check") {
    return CmdCheck(d);
  }
  if (cmd == "watch") {
    return CmdWatch(d);
  }
  if (cmd == "heatmap") {
    int columns = 64;
    for (int i = 3; i + 1 < argc; i++) {
      if (std::strcmp(argv[i], "--cols") == 0) {
        columns = std::atoi(argv[i + 1]);
      }
    }
    if (columns <= 0) {
      return Usage();
    }
    return CmdHeatmap(d, columns);
  }
  if (cmd == "trace") {
    std::string out_path;
    for (int i = 3; i + 1 < argc; i++) {
      if (std::strcmp(argv[i], "-o") == 0) {
        out_path = argv[i + 1];
      }
    }
    return CmdTrace(d, out_path);
  }
  return Usage();
}

}  // namespace
}  // namespace cclbt::pmctl

int main(int argc, char** argv) { return cclbt::pmctl::Main(argc, argv); }
