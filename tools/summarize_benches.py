#!/usr/bin/env python3
"""Summarize bench_output.txt into per-experiment tables.

Usage: tools/summarize_benches.py [bench_output.txt]
       tools/summarize_benches.py --check FILE.json [FILE.json ...]
       tools/summarize_benches.py --tail FILE

Default mode parses google-benchmark console rows of the form
    fig10/insert/cclbtree/threads:48/iterations:1  ... Mops=6.97 XBI=8.99 ...
and prints one aligned table per experiment prefix (fig02, fig03, ...,
tab1-3, extra_*), with the counters as columns. The fig14 GC timeline is
passed through verbatim.

--check validates machine-readable BENCH_*.json files (used by
run_benches.sh to refuse partial/corrupt results): each file must be either
google-benchmark JSON ("context" + non-empty "benchmarks", every entry
named) or the bench_pmsim_hotpath schema ("bench": "pmsim_hotpath" +
non-empty "scenarios" with the expected numeric fields). Exits non-zero on
the first invalid file.

--tail extracts the deterministic "metric tail" of one bench console log:
per-row counters (virtual-time metrics, key=value tokens, kept verbatim) and
the fig14 GC timeline, dropping the wall-clock time columns. Two runs of the
same bench must produce byte-identical --tail output (the driver determinism
contract, DESIGN.md §10); run_benches.sh --determinism diffs them.
"""
import json
import re
import sys
from collections import defaultdict

ROW = re.compile(
    r"^(?P<name>(fig|tab|extra|backend|service)\w*/\S+?)/iterations:1\s+(?P<rest>.*)$")
COUNTER = re.compile(r"(\w+)=([-\d.keM]+)")


def parse_value(text: str) -> float:
    mult = 1.0
    if text.endswith("k"):
        mult, text = 1e3, text[:-1]
    elif text.endswith("M"):
        mult, text = 1e6, text[:-1]
    try:
        return float(text) * mult
    except ValueError:
        return float("nan")


def check_file(path: str) -> str | None:
    """Returns an error string if the file is not a valid results JSON."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return f"unreadable or malformed JSON: {exc}"
    if not isinstance(data, dict):
        return "top-level value is not an object"
    if data.get("bench") == "pmsim_hotpath":
        scenarios = data.get("scenarios")
        if not isinstance(scenarios, list) or not scenarios:
            return "pmsim_hotpath schema: missing/empty 'scenarios'"
        required = ("name", "threads", "ops", "wall_ms", "mops_wall",
                    "heap_allocs_measured")
        for i, row in enumerate(scenarios):
            if not isinstance(row, dict):
                return f"scenario #{i} is not an object"
            missing = [key for key in required if key not in row]
            if missing:
                return f"scenario #{i} missing fields: {', '.join(missing)}"
        return None
    if "context" in data:
        benchmarks = data.get("benchmarks")
        if not isinstance(benchmarks, list) or not benchmarks:
            return "google-benchmark schema: missing/empty 'benchmarks'"
        for i, row in enumerate(benchmarks):
            if not isinstance(row, dict) or "name" not in row:
                return f"benchmark #{i} has no 'name'"
        return None
    return "unrecognized schema (neither google-benchmark nor pmsim_hotpath)"


def run_check(paths: list[str]) -> int:
    if not paths:
        print("--check requires at least one file", file=sys.stderr)
        return 2
    for path in paths:
        error = check_file(path)
        if error is not None:
            print(f"summarize_benches.py: {path}: {error}", file=sys.stderr)
            return 1
    return 0


def run_tail(paths: list[str]) -> int:
    if len(paths) != 1:
        print("--tail requires exactly one file", file=sys.stderr)
        return 2
    emitted = 0
    with open(paths[0]) as handle:
        for line in handle:
            line = line.rstrip()
            if line.startswith(("w/o-GC", "locality-GC", "naive-GC")):
                print(line)  # fig14 timeline rows are fully virtual-time
                emitted += 1
                continue
            match = ROW.match(line.strip())
            if not match:
                continue
            counters = COUNTER.findall(match.group("rest"))
            print(match.group("name") + "  " +
                  " ".join(f"{key}={value}" for key, value in counters))
            emitted += 1
    if emitted == 0:
        # An empty tail would make any determinism diff vacuously pass.
        print(f"summarize_benches.py: {paths[0]}: no metric rows found",
              file=sys.stderr)
        return 1
    return 0


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "--check":
        return run_check(sys.argv[2:])
    if len(sys.argv) > 1 and sys.argv[1] == "--tail":
        return run_tail(sys.argv[2:])
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    experiments = defaultdict(list)  # prefix -> [(config, {counter: value})]
    gc_timeline = []
    with open(path) as handle:
        for line in handle:
            line = line.rstrip()
            if line.startswith(("w/o-GC", "locality-GC", "naive-GC")):
                gc_timeline.append(line)
                continue
            match = ROW.match(line.strip())
            if not match:
                continue
            name = match.group("name")
            prefix = name.split("/", 1)[0]
            config = name.split("/", 1)[1]
            counters = {key: parse_value(value)
                        for key, value in COUNTER.findall(match.group("rest"))}
            experiments[prefix].append((config, counters))

    for prefix in sorted(experiments):
        rows = experiments[prefix]
        columns = sorted({key for _, counters in rows for key in counters})
        print(f"\n=== {prefix} ===")
        header = f"{'config':<42}" + "".join(f"{col:>14}" for col in columns)
        print(header)
        for config, counters in rows:
            cells = "".join(
                f"{counters.get(col, float('nan')):>14.3f}" for col in columns)
            print(f"{config:<42}{cells}")

    if gc_timeline:
        print("\n=== fig14 GC timeline (verbatim) ===")
        for line in gc_timeline:
            print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
