#!/usr/bin/env python3
"""Summarize bench_output.txt into per-experiment tables.

Usage: tools/summarize_benches.py [bench_output.txt]

Parses google-benchmark console rows of the form
    fig10/insert/cclbtree/threads:48/iterations:1  ... Mops=6.97 XBI=8.99 ...
and prints one aligned table per experiment prefix (fig02, fig03, ...,
tab1-3, extra_*), with the counters as columns. The fig14 GC timeline is
passed through verbatim.
"""
import re
import sys
from collections import defaultdict

ROW = re.compile(r"^(?P<name>(fig|tab|extra)\w*/\S+?)/iterations:1\s+(?P<rest>.*)$")
COUNTER = re.compile(r"(\w+)=([-\d.keM]+)")


def parse_value(text: str) -> float:
    mult = 1.0
    if text.endswith("k"):
        mult, text = 1e3, text[:-1]
    elif text.endswith("M"):
        mult, text = 1e6, text[:-1]
    try:
        return float(text) * mult
    except ValueError:
        return float("nan")


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    experiments = defaultdict(list)  # prefix -> [(config, {counter: value})]
    gc_timeline = []
    with open(path) as handle:
        for line in handle:
            line = line.rstrip()
            if line.startswith(("w/o-GC", "locality-GC", "naive-GC")):
                gc_timeline.append(line)
                continue
            match = ROW.match(line.strip())
            if not match:
                continue
            name = match.group("name")
            prefix = name.split("/", 1)[0]
            config = name.split("/", 1)[1]
            counters = {key: parse_value(value)
                        for key, value in COUNTER.findall(match.group("rest"))}
            experiments[prefix].append((config, counters))

    for prefix in sorted(experiments):
        rows = experiments[prefix]
        columns = sorted({key for _, counters in rows for key in counters})
        print(f"\n=== {prefix} ===")
        header = f"{'config':<42}" + "".join(f"{col:>14}" for col in columns)
        print(header)
        for config, counters in rows:
            cells = "".join(
                f"{counters.get(col, float('nan')):>14.3f}" for col in columns)
            print(f"{config:<42}{cells}")

    if gc_timeline:
        print("\n=== fig14 GC timeline (verbatim) ===")
        for line in gc_timeline:
            print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
