#!/bin/bash
# Builds and runs the test suite under ThreadSanitizer and ASan+UBSan.
# The pmsim hot path is lock-striped and uses relaxed atomics extensively;
# TSan is the check that the "allocation-free, contention-free" fast paths
# stayed data-race-free.
#
# Usage: tools/sanitize.sh [tsan|asan]   (default: both)
set -euo pipefail
cd "$(dirname "$0")/.."

run_one() {
  local kind="$1"
  local dir="build-${kind}"
  echo "=== ${kind}: configure + build ==="
  cmake -B "${dir}" -S . -DSANITIZE="${kind}" >/dev/null
  cmake --build "${dir}" -j"$(nproc)"
  echo "=== ${kind}: ctest ==="
  # Fail on any sanitizer report, not just test assertion failures. The
  # suppression file covers one known pre-existing optimistic-read race in
  # the core tree (see tools/tsan.supp), nothing in pmsim.
  TSAN_OPTIONS="halt_on_error=1:suppressions=$(pwd)/tools/tsan.supp" \
  ASAN_OPTIONS="detect_leaks=0:halt_on_error=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --test-dir "${dir}" --output-on-failure
  echo "=== ${kind}: OK ==="
}

case "${1:-all}" in
  tsan) run_one tsan ;;
  asan) run_one asan ;;
  all)
    run_one tsan
    run_one asan
    ;;
  *)
    echo "usage: $0 [tsan|asan]" >&2
    exit 2
    ;;
esac
