#!/bin/bash
# Builds and runs the test suite under ThreadSanitizer and ASan+UBSan.
# The pmsim hot path is lock-striped and uses relaxed atomics extensively;
# TSan is the check that the "allocation-free, contention-free" fast paths
# stayed data-race-free.
#
# Usage: tools/sanitize.sh [tsan|asan] [ctest-regex]   (default: both, all tests)
#
# With a regex, only matching tests are built (test target names equal test
# names) and run — tools/ci.sh uses this to sanitize the pmsim + trace
# subset without paying for a full instrumented build of every bench.
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${2:-}"

run_one() {
  local kind="$1"
  local dir="build-${kind}"
  echo "=== ${kind}: configure + build ==="
  cmake -B "${dir}" -S . -DSANITIZE="${kind}" >/dev/null
  if [ -n "${FILTER}" ]; then
    # Build only the matching test targets (repro_test names the target after
    # the test), not the whole tree.
    local targets
    # ctest pads single-digit test ids ("Test  #2:"), so allow any spacing
    # between "Test" and "#" — a too-strict pattern silently drops targets.
    targets=$(ctest --test-dir "${dir}" -N -R "${FILTER}" |
              sed -n 's/^ *Test *#[0-9]*: //p')
    if [ -z "${targets}" ]; then
      echo "no tests match regex '${FILTER}'" >&2
      exit 2
    fi
    # shellcheck disable=SC2086
    cmake --build "${dir}" -j"$(nproc)" --target ${targets}
  else
    cmake --build "${dir}" -j"$(nproc)"
  fi
  echo "=== ${kind}: ctest ==="
  # Fail on any sanitizer report, not just test assertion failures. The
  # suppression file covers one known pre-existing optimistic-read race in
  # the core tree (see tools/tsan.supp), nothing in pmsim.
  TSAN_OPTIONS="halt_on_error=1:suppressions=$(pwd)/tools/tsan.supp" \
  ASAN_OPTIONS="detect_leaks=0:halt_on_error=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --test-dir "${dir}" --output-on-failure ${FILTER:+-R "${FILTER}"}
  echo "=== ${kind}: OK ==="
}

case "${1:-all}" in
  tsan) run_one tsan ;;
  asan) run_one asan ;;
  all)
    run_one tsan
    run_one asan
    ;;
  *)
    echo "usage: $0 [tsan|asan] [ctest-regex]" >&2
    exit 2
    ;;
esac
