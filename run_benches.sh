#!/bin/bash
# Runs every benchmark binary and appends to bench_output.txt.
cd "$(dirname "$0")"
: > bench_output.txt
for b in build/bench/bench_*; do
  echo "=== $(basename "$b") ===" >> bench_output.txt
  "$b" >> bench_output.txt 2>/dev/null
  echo "" >> bench_output.txt
done
echo "ALL_BENCHES_DONE" >> bench_output.txt
