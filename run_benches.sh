#!/bin/bash
# Runs every benchmark binary. Console output is appended to bench_output.txt
# and each binary's machine-readable results land in BENCH_<name>.json
# (google-benchmark JSON; bench_pmsim_hotpath keeps its own schema in
# BENCH_pmsim.json). Results are staged to a temp file and only moved into
# place after tools/summarize_benches.py --check accepts them, so a crashed
# or interrupted bench fails this script loudly instead of leaving a
# partial/invalid BENCH_*.json behind.
#
#   ./run_benches.sh [--filter PATTERN] [--stage-to DIR]
#
# --filter restricts which bench binaries run (egrep over basenames);
# --stage-to redirects bench_output.txt and the BENCH_*.json artifacts into
# DIR instead of the repo root (used by the CI bench gate).
#
#   ./run_benches.sh --determinism [FILTER]
#
# runs each staged bench TWICE and diffs the virtual-metric tails
# (tools/summarize_benches.py --tail): any difference is a violation of the
# driver determinism contract (DESIGN.md §10) and fails the script. Each run
# also gets CCL_METRICS set, so every .pmmetrics dump the bench emits is
# checked two ways: the header+epoch lines must be bit-identical across the
# two runs (the summary record holds wall-clock data and is excluded), and
# `pmctl series` must accept each dump (it exits non-zero if any epoch's
# per-component media-write bytes fail to sum to that epoch's windowed
# media_write_bytes). FILTER is an optional egrep pattern over binary names
# (default: every bench). bench_pmsim_hotpath is excluded — it measures host
# wall time by design. No bench_output.txt / BENCH_*.json artifacts are
# touched in this mode.
#
#   ./run_benches.sh --baseline-update
#
# regenerates the checked-in bench/baselines/ used by tools/bench_gate.py:
# re-stages the benches named by bench/baselines/MANIFEST (scale + filter;
# defaults are used when bootstrapping a missing MANIFEST), then replaces
# the baseline BENCH_*.json files and rewrites MANIFEST.
#
#   ./run_benches.sh --gate-stage DIR
#
# stages fresh results into DIR at the MANIFEST's scale/filter, for
# comparison by `tools/bench_gate.py --staged DIR` (the ci.sh bench-gate
# step).
set -u
cd "$(dirname "$0")"

BASELINE_DIR="bench/baselines"
DEFAULT_BASELINE_SCALE=60000
DEFAULT_BASELINE_FILTER='fig03|tab1_nbatch|service_tail'

fail() {
  echo "run_benches.sh: FAILED: $*" >&2
  exit 1
}

manifest_get() {  # manifest_get KEY DEFAULT
  local value=""
  if [ -f "${BASELINE_DIR}/MANIFEST" ]; then
    value="$(sed -n "s/^$1=//p" "${BASELINE_DIR}/MANIFEST" | head -n1)"
  fi
  echo "${value:-$2}"
}

run_determinism() {
  local filter="${1:-.}"
  local status=0 matched=0 total_dumps=0
  local out1 out2 tail1 tail2 mdir1 mdir2
  out1="$(mktemp)" && out2="$(mktemp)" && tail1="$(mktemp)" && tail2="$(mktemp)" \
    && mdir1="$(mktemp -d)" && mdir2="$(mktemp -d)" || fail "mktemp"
  trap 'rm -f "$out1" "$out2" "$tail1" "$tail2"; rm -rf "$mdir1" "$mdir2"' EXIT
  for b in build/bench/bench_*; do
    local name
    name="$(basename "$b")"
    [ "$name" = "bench_pmsim_hotpath" ] && continue  # wall-clock bench
    echo "$name" | grep -Eq "$filter" || continue
    matched=1
    rm -f "$mdir1"/*.pmmetrics "$mdir2"/*.pmmetrics
    CCL_METRICS="$mdir1/m" "$b" > "$out1" 2>&1 \
      || fail "$name exited with status $? (run 1)"
    CCL_METRICS="$mdir2/m" "$b" > "$out2" 2>&1 \
      || fail "$name exited with status $? (run 2)"
    tools/summarize_benches.py --tail "$out1" > "$tail1" \
      || fail "$name run 1 produced no metric tail"
    tools/summarize_benches.py --tail "$out2" > "$tail2" \
      || fail "$name run 2 produced no metric tail"
    if diff -u "$tail1" "$tail2"; then
      echo "determinism OK: ${name} ($(wc -l < "$tail1") metric rows bit-identical)"
    else
      echo "run_benches.sh: DETERMINISM VIOLATION in ${name} (diff above)" >&2
      status=1
    fi
    # Metrics epoch-series determinism: every .pmmetrics dump of run 1 must
    # have a bit-identical counterpart (header+epoch lines; the summary
    # record is wall-clock territory) in run 2, and must satisfy the
    # per-epoch component-bytes sum invariant enforced by `pmctl series`.
    local ndumps=0 dump1 dump2 base
    for dump1 in "$mdir1"/*.pmmetrics; do
      [ -e "$dump1" ] || continue
      ndumps=$((ndumps + 1))
      base="$(basename "$dump1")"
      dump2="$mdir2/$base"
      if [ ! -f "$dump2" ]; then
        echo "run_benches.sh: DETERMINISM VIOLATION in ${name}: ${base} only emitted by run 1" >&2
        status=1
        continue
      fi
      if ! diff -u <(grep -v '"type":"summary"' "$dump1") \
                   <(grep -v '"type":"summary"' "$dump2"); then
        echo "run_benches.sh: DETERMINISM VIOLATION in ${name} metrics series ${base} (diff above)" >&2
        status=1
      fi
      if ! build/tools/pmctl series "$dump1" > /dev/null; then
        echo "run_benches.sh: ${name} ${base}: pmctl series rejected the dump (component-bytes sum violation?)" >&2
        status=1
      fi
    done
    if [ "$ndumps" -gt 0 ]; then
      echo "metrics determinism OK: ${name} (${ndumps} epoch series bit-identical, component sums verified)"
      total_dumps=$((total_dumps + ndumps))
    else
      # e.g. bench_fig14_gc drives kvindex::Runtime directly, not the driver.
      echo "metrics: ${name} emitted no .pmmetrics dump (bench bypasses the driver)"
    fi
  done
  [ "$matched" = 1 ] || fail "--determinism filter '${filter}' matched no bench"
  [ "$total_dumps" -gt 0 ] \
    || fail "no bench emitted a .pmmetrics dump despite CCL_METRICS being set"
  [ "$status" = 0 ] || fail "determinism violations detected"
  echo "DETERMINISM_OK"
  exit 0
}

OUT_DIR="."
FILTER="."
while [ $# -gt 0 ]; do
  case "$1" in
    --determinism)
      run_determinism "${2:-.}"  # exits
      ;;
    --filter)
      FILTER="${2:?--filter needs an egrep pattern}"
      shift 2
      ;;
    --stage-to)
      OUT_DIR="${2:?--stage-to needs a directory}"
      mkdir -p "$OUT_DIR" || fail "cannot create ${OUT_DIR}"
      shift 2
      ;;
    --baseline-update)
      scale="$(manifest_get scale "$DEFAULT_BASELINE_SCALE")"
      bfilter="$(manifest_get filter "$DEFAULT_BASELINE_FILTER")"
      stage="$(mktemp -d)" || fail "mktemp"
      trap 'rm -rf "$stage"' EXIT
      CCL_BENCH_SCALE="$scale" ./run_benches.sh \
        --filter "$bfilter" --stage-to "$stage" \
        || fail "baseline staging run failed"
      mkdir -p "$BASELINE_DIR"
      rm -f "$BASELINE_DIR"/BENCH_*.json
      cp "$stage"/BENCH_*.json "$BASELINE_DIR"/ || fail "no staged BENCH_*.json to install"
      {
        echo "# Benchmark baselines for tools/bench_gate.py."
        echo "# Regenerate with: ./run_benches.sh --baseline-update"
        echo "scale=${scale}"
        echo "filter=${bfilter}"
      } > "$BASELINE_DIR/MANIFEST"
      echo "BASELINES_UPDATED ($(ls "$BASELINE_DIR"/BENCH_*.json | wc -l) files, scale=${scale}, filter=${bfilter})"
      exit 0
      ;;
    --gate-stage)
      dir="${2:?--gate-stage needs a directory}"
      scale="$(manifest_get scale "$DEFAULT_BASELINE_SCALE")"
      bfilter="$(manifest_get filter "$DEFAULT_BASELINE_FILTER")"
      CCL_BENCH_SCALE="$scale" exec ./run_benches.sh \
        --filter "$bfilter" --stage-to "$dir"
      ;;
    *)
      fail "unknown argument: $1"
      ;;
  esac
done

: > "$OUT_DIR/bench_output.txt"
matched=0
for b in build/bench/bench_*; do
  name="$(basename "$b")"
  echo "$name" | grep -Eq "$FILTER" || continue
  matched=1
  echo "=== ${name} ===" >> "$OUT_DIR/bench_output.txt"
  if [ "$name" = "bench_pmsim_hotpath" ]; then
    json="BENCH_pmsim.json"   # established artifact name (see CHANGES.md)
  else
    json="BENCH_${name#bench_}.json"
  fi
  tmp="$(mktemp "$OUT_DIR/tmp.${name}.XXXXXX")" || fail "mktemp"
  trap 'rm -f "$tmp"' EXIT
  if [ "$name" = "bench_pmsim_hotpath" ]; then
    "$b" "$tmp" >> "$OUT_DIR/bench_output.txt" 2>&1 \
      || { rc=$?; rm -f "$tmp"; fail "$name exited with status $rc"; }
  else
    "$b" --benchmark_out="$tmp" --benchmark_out_format=json >> "$OUT_DIR/bench_output.txt" 2>&1 \
      || { rc=$?; rm -f "$tmp"; fail "$name exited with status $rc"; }
  fi
  if [ ! -s "$tmp" ]; then
    # Console-only bench (custom main, e.g. bench_fig14_gc): its results live
    # in bench_output.txt and there is no JSON artifact to validate.
    rm -f "$tmp"
    trap - EXIT
    echo "" >> "$OUT_DIR/bench_output.txt"
    continue
  fi
  tools/summarize_benches.py --check "$tmp" \
    || { rm -f "$tmp"; fail "$name wrote invalid results (no partial ${json} kept)"; }
  mv "$tmp" "$OUT_DIR/$json" || { rm -f "$tmp"; fail "cannot move results into ${json}"; }
  trap - EXIT
  echo "" >> "$OUT_DIR/bench_output.txt"
done
[ "$matched" = 1 ] || fail "--filter '${FILTER}' matched no bench"
echo "ALL_BENCHES_DONE" >> "$OUT_DIR/bench_output.txt"
echo "ALL_BENCHES_DONE"
