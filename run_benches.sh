#!/bin/bash
# Runs every benchmark binary. Console output is appended to bench_output.txt
# and each binary's machine-readable results land in BENCH_<name>.json
# (google-benchmark JSON; bench_pmsim_hotpath keeps its own schema in
# BENCH_pmsim.json). Results are staged to a temp file and only moved into
# place after tools/summarize_benches.py --check accepts them, so a crashed
# or interrupted bench fails this script loudly instead of leaving a
# partial/invalid BENCH_*.json behind.
set -u
cd "$(dirname "$0")"

fail() {
  echo "run_benches.sh: FAILED: $*" >&2
  exit 1
}

: > bench_output.txt
for b in build/bench/bench_*; do
  name="$(basename "$b")"
  echo "=== ${name} ===" >> bench_output.txt
  if [ "$name" = "bench_pmsim_hotpath" ]; then
    json="BENCH_pmsim.json"   # established artifact name (see CHANGES.md)
  else
    json="BENCH_${name#bench_}.json"
  fi
  tmp="$(mktemp "tmp.${name}.XXXXXX")" || fail "mktemp"
  trap 'rm -f "$tmp"' EXIT
  if [ "$name" = "bench_pmsim_hotpath" ]; then
    "$b" "$tmp" >> bench_output.txt 2>&1 \
      || { rc=$?; rm -f "$tmp"; fail "$name exited with status $rc"; }
  else
    "$b" --benchmark_out="$tmp" --benchmark_out_format=json >> bench_output.txt 2>&1 \
      || { rc=$?; rm -f "$tmp"; fail "$name exited with status $rc"; }
  fi
  if [ ! -s "$tmp" ]; then
    # Console-only bench (custom main, e.g. bench_fig14_gc): its results live
    # in bench_output.txt and there is no JSON artifact to validate.
    rm -f "$tmp"
    trap - EXIT
    echo "" >> bench_output.txt
    continue
  fi
  tools/summarize_benches.py --check "$tmp" \
    || { rm -f "$tmp"; fail "$name wrote invalid results (no partial ${json} kept)"; }
  mv "$tmp" "$json" || { rm -f "$tmp"; fail "cannot move results into ${json}"; }
  trap - EXIT
  echo "" >> bench_output.txt
done
echo "ALL_BENCHES_DONE" >> bench_output.txt
