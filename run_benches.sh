#!/bin/bash
# Runs every benchmark binary. Console output is appended to bench_output.txt
# and each binary's machine-readable results land in BENCH_<name>.json
# (google-benchmark JSON; bench_pmsim_hotpath keeps its own schema in
# BENCH_pmsim.json). Results are staged to a temp file and only moved into
# place after tools/summarize_benches.py --check accepts them, so a crashed
# or interrupted bench fails this script loudly instead of leaving a
# partial/invalid BENCH_*.json behind.
#
#   ./run_benches.sh --determinism [FILTER]
#
# runs each staged bench TWICE and diffs the virtual-metric tails
# (tools/summarize_benches.py --tail): any difference is a violation of the
# driver determinism contract (DESIGN.md §10) and fails the script. FILTER is
# an optional egrep pattern over binary names (default: every bench).
# bench_pmsim_hotpath is excluded — it measures host wall time by design.
# No bench_output.txt / BENCH_*.json artifacts are touched in this mode.
set -u
cd "$(dirname "$0")"

fail() {
  echo "run_benches.sh: FAILED: $*" >&2
  exit 1
}

run_determinism() {
  local filter="${1:-.}"
  local status=0 matched=0
  local out1 out2 tail1 tail2
  out1="$(mktemp)" && out2="$(mktemp)" && tail1="$(mktemp)" && tail2="$(mktemp)" \
    || fail "mktemp"
  trap 'rm -f "$out1" "$out2" "$tail1" "$tail2"' EXIT
  for b in build/bench/bench_*; do
    local name
    name="$(basename "$b")"
    [ "$name" = "bench_pmsim_hotpath" ] && continue  # wall-clock bench
    echo "$name" | grep -Eq "$filter" || continue
    matched=1
    "$b" > "$out1" 2>&1 || fail "$name exited with status $? (run 1)"
    "$b" > "$out2" 2>&1 || fail "$name exited with status $? (run 2)"
    tools/summarize_benches.py --tail "$out1" > "$tail1" \
      || fail "$name run 1 produced no metric tail"
    tools/summarize_benches.py --tail "$out2" > "$tail2" \
      || fail "$name run 2 produced no metric tail"
    if diff -u "$tail1" "$tail2"; then
      echo "determinism OK: ${name} ($(wc -l < "$tail1") metric rows bit-identical)"
    else
      echo "run_benches.sh: DETERMINISM VIOLATION in ${name} (diff above)" >&2
      status=1
    fi
  done
  [ "$matched" = 1 ] || fail "--determinism filter '${filter}' matched no bench"
  [ "$status" = 0 ] || fail "determinism violations detected"
  echo "DETERMINISM_OK"
  exit 0
}

if [ "${1:-}" = "--determinism" ]; then
  run_determinism "${2:-.}"
fi

: > bench_output.txt
for b in build/bench/bench_*; do
  name="$(basename "$b")"
  echo "=== ${name} ===" >> bench_output.txt
  if [ "$name" = "bench_pmsim_hotpath" ]; then
    json="BENCH_pmsim.json"   # established artifact name (see CHANGES.md)
  else
    json="BENCH_${name#bench_}.json"
  fi
  tmp="$(mktemp "tmp.${name}.XXXXXX")" || fail "mktemp"
  trap 'rm -f "$tmp"' EXIT
  if [ "$name" = "bench_pmsim_hotpath" ]; then
    "$b" "$tmp" >> bench_output.txt 2>&1 \
      || { rc=$?; rm -f "$tmp"; fail "$name exited with status $rc"; }
  else
    "$b" --benchmark_out="$tmp" --benchmark_out_format=json >> bench_output.txt 2>&1 \
      || { rc=$?; rm -f "$tmp"; fail "$name exited with status $rc"; }
  fi
  if [ ! -s "$tmp" ]; then
    # Console-only bench (custom main, e.g. bench_fig14_gc): its results live
    # in bench_output.txt and there is no JSON artifact to validate.
    rm -f "$tmp"
    trap - EXIT
    echo "" >> bench_output.txt
    continue
  fi
  tools/summarize_benches.py --check "$tmp" \
    || { rm -f "$tmp"; fail "$name wrote invalid results (no partial ${json} kept)"; }
  mv "$tmp" "$json" || { rm -f "$tmp"; fail "cannot move results into ${json}"; }
  trap - EXIT
  echo "" >> bench_output.txt
done
echo "ALL_BENCHES_DONE" >> bench_output.txt
