#!/bin/bash
# Runs every benchmark binary and appends to bench_output.txt. The pmsim
# hot-path microbench additionally writes its machine-readable results to
# BENCH_pmsim.json (host wall-clock metrics — everything else here reports
# virtual-time metrics).
cd "$(dirname "$0")"
: > bench_output.txt
for b in build/bench/bench_*; do
  echo "=== $(basename "$b") ===" >> bench_output.txt
  if [ "$(basename "$b")" = "bench_pmsim_hotpath" ]; then
    "$b" BENCH_pmsim.json >> bench_output.txt 2>/dev/null
  else
    "$b" >> bench_output.txt 2>/dev/null
  fi
  echo "" >> bench_output.txt
done
echo "ALL_BENCHES_DONE" >> bench_output.txt
